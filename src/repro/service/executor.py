"""Job execution on the existing campaign/fabric runtime.

Each executor is one daemon thread pulling admitted jobs off the
service queue and driving them through
:func:`~repro.runtime.campaign.run_campaign` — the exact runtime the
CLI uses, with the job's :class:`~repro.service.jobs.JobGuard` in the
``signal_guard`` slot so cancellation and drain reuse the cooperative
stop machinery, a per-job :class:`~repro.runtime.governor.
ResourceGovernor` for deadlines/budgets, and a per-job campaign
checkpoint under the service state directory so a killed daemon
resumes instead of recomputing.

Verdict durability has a strict ordering: the result file is written
atomically *before* the terminal journal record.  A crash between the
two leaves the job journaled ``running``; the restart re-runs it from
the checkpoint and rewrites the same bytes — the journal never claims
a result that is not on disk.
"""

import hashlib
import json
import os
import threading
import time

from repro import failpoints as _failpoints
from repro.faults.status import FaultSet
from repro.runtime.campaign import _load_compiled, run_campaign
from repro.runtime.checkpoint import (
    sniff_checkpoint_kind,
    write_json_atomic,
)
from repro.runtime.errors import CheckpointError, ReproError
from repro.runtime.governor import ResourceGovernor
from repro.sequences.random_seq import random_sequence_for

CHECKPOINT_NAME = "campaign.ckpt"
RESULT_NAME = "result.json"


def job_sequence(compiled, spec):
    """The job's test sequence: explicit vectors or seeded random."""
    if spec.sequence is not None:
        width = compiled.num_pis
        for index, line in enumerate(spec.sequence):
            if len(line) != width:
                raise ReproError(
                    f"sequence[{index}] has {len(line)} bits, circuit "
                    f"{spec.circuit!r} has {width} inputs"
                )
        return [tuple(int(c) for c in line) for line in spec.sequence]
    return random_sequence_for(compiled, spec.length, seed=spec.seed)


def build_result_payload(job, compiled, sequence, fault_set, result):
    """The durable result document of a finished (or partial) run.

    ``verdicts`` — one ``[fault, status, detected_by, detected_at]``
    row per fault, in fault-universe order — is the byte-comparable
    core: two runs of the same spec (interrupted or not) must produce
    identical verdict bytes.  The runtime block carries accounting and
    is allowed to differ (elapsed times, retry counts).
    """
    counts = fault_set.counts()
    return {
        "job": job.id,
        "spec": job.spec.to_json(),
        "frames": len(sequence),
        "stopped": result.stopped,
        "exact": result.exact,
        "counts": counts,
        "verdicts": [
            [
                str(record.fault.key()),
                record.status,
                record.detected_by,
                record.detected_at,
            ]
            for record in fault_set
        ],
        "runtime": result.runtime_summary(),
    }


def verdict_digest(payload):
    """SHA-256 over the canonical verdict rows (journaled for audit)."""
    blob = json.dumps(payload["verdicts"], sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class JobExecutor:
    """The service's pool of job-running threads."""

    def __init__(self, service, count=1):
        self.service = service
        self.count = max(int(count), 1)
        self._threads = []

    def start(self):
        for index in range(self.count):
            thread = threading.Thread(
                target=self._loop,
                name=f"repro-serve-executor-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def join(self, timeout=None):
        deadline = None if timeout is None else time.monotonic() + timeout
        for thread in self._threads:
            remaining = (
                None if deadline is None
                else max(deadline - time.monotonic(), 0.0)
            )
            thread.join(remaining)
        return not any(thread.is_alive() for thread in self._threads)

    def _loop(self):
        while True:
            job = self.service.next_job()
            if job is None:
                return  # draining and the queue is empty
            self.execute(job)

    # ------------------------------------------------------------------
    def execute(self, job):
        service = self.service
        job_dir = service.job_dir(job.id)
        os.makedirs(job_dir, exist_ok=True)
        checkpoint_path = os.path.join(job_dir, CHECKPOINT_NAME)
        span = service.trace_span(
            "job", job=job.id, circuit=job.spec.circuit,
            strategy=job.spec.strategy, attempt=job.attempts + 1,
        )
        try:
            service.note_running(job)
            result, compiled, sequence, fault_set = self._run(
                job, checkpoint_path
            )
        except Exception as exc:  # noqa: BLE001 - a job must never
            # take the daemon down; the failure is journaled instead
            span.add(outcome="error")
            span.close()
            service.note_failed(job, f"{type(exc).__name__}: {exc}")
            return
        payload = build_result_payload(
            job, compiled, sequence, fault_set, result
        )
        result_path = os.path.join(job_dir, RESULT_NAME)
        # durability order: result bytes first, journal verdict second
        write_json_atomic(result_path, payload)
        if _failpoints.fire("service.result.crash"):
            # the exact durability gap the ordering above defends: the
            # result is on disk but the journal still says ``running``.
            # A restart must requeue the job and reproduce the digest.
            os._exit(86)
        digest = verdict_digest(payload)
        span.add(outcome=result.stopped, digest=digest)
        span.close()
        if result.stopped == "completed":
            service.note_done(job, RESULT_NAME, digest, payload)
        elif result.stopped == "signal" and job.cancel_requested:
            service.note_cancelled(job, RESULT_NAME, digest)
        elif result.stopped == "signal":
            # graceful drain checkpointed it; a restart requeues
            service.note_interrupted(job, RESULT_NAME, digest)
        else:
            # a budget stop (deadline / nodes / rss) is terminal: the
            # partial result is preserved, the reason journaled
            service.note_failed(
                job, f"budget exhausted: {result.stopped}",
                result_file=RESULT_NAME, digest=digest,
                stopped=result.stopped,
            )

    def _progress_hook(self, job):
        """A campaign/fabric progress hook feeding the job's event
        stream.  The buffer's push never blocks, so a slow or absent
        ``/jobs/<id>/events`` consumer cannot stall this thread."""
        service = self.service

        def hook(payload):
            service.push_progress(job, payload)

        return hook

    def _run(self, job, checkpoint_path):
        spec = job.spec
        compiled = _load_compiled(spec.circuit)
        sequence = job_sequence(compiled, spec)
        governor = ResourceGovernor(
            deadline=spec.deadline, node_budget=spec.node_budget
        )
        if os.path.exists(checkpoint_path):
            resumed = self._resume(
                job, checkpoint_path, compiled, governor
            )
            if resumed is not None:
                return resumed
            # unusable checkpoint (e.g. header-only after a crash in
            # the first frames): start over from the journaled spec
            os.unlink(checkpoint_path)
        from repro.faults.collapse import collapse_faults

        faults, _ = collapse_faults(compiled)
        fault_set = FaultSet(faults)
        result = run_campaign(
            compiled, sequence, fault_set,
            strategy=spec.strategy,
            node_limit=spec.node_limit,
            governor=governor,
            checkpoint_path=checkpoint_path,
            checkpoint_every=spec.checkpoint_every,
            fallback_frames=spec.fallback_frames,
            signal_guard=job.guard,
            circuit_spec=spec.circuit,
            xred=spec.xred,
            workers=spec.workers,
            shard_size=spec.shard_size,
            max_retries=spec.max_retries,
            progress_hook=self._progress_hook(job),
        )
        return result, compiled, sequence, fault_set

    def _resume(self, job, checkpoint_path, compiled, governor):
        """Resume either checkpoint flavor; None if not resumable."""
        spec = job.spec
        from repro.faults.collapse import collapse_faults

        faults, _ = collapse_faults(compiled)
        fault_set = FaultSet(faults)
        try:
            kind = sniff_checkpoint_kind(checkpoint_path)
            if kind == "fabric":
                from repro.runtime.fabric import (
                    FabricConfig,
                    load_fabric_checkpoint,
                    resume_sharded_campaign,
                )

                checkpoint = load_fabric_checkpoint(checkpoint_path)
                sequence = checkpoint.sequence
                result = resume_sharded_campaign(
                    checkpoint_path,
                    compiled=compiled,
                    fault_set=fault_set,
                    governor=governor,
                    signal_guard=job.guard,
                    config=FabricConfig(
                        workers=spec.workers,
                        shard_size=spec.shard_size,
                        max_retries=spec.max_retries or 2,
                    ),
                    progress_hook=self._progress_hook(job),
                )
            else:
                from repro.runtime.campaign import resume_campaign
                from repro.runtime.checkpoint import load_checkpoint

                checkpoint = load_checkpoint(checkpoint_path)
                sequence = checkpoint.sequence
                result = resume_campaign(
                    checkpoint_path,
                    compiled=compiled,
                    fault_set=fault_set,
                    governor=governor,
                    checkpoint_every=spec.checkpoint_every,
                    signal_guard=job.guard,
                    progress_hook=self._progress_hook(job),
                )
        except CheckpointError:
            return None
        return result, compiled, sequence, fault_set
