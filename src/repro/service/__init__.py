"""The crash-safe campaign service (``python -m repro serve``).

A small stdlib-only daemon that runs fault-simulation campaigns as
journaled jobs behind a JSON-over-HTTP API:

* :mod:`repro.service.server` — HTTP front end, bounded admission
  queue with load shedding, graceful drain, restart recovery,
* :mod:`repro.service.journal` — the fsync'd append-only job journal
  and its state machine,
* :mod:`repro.service.jobs` — job specs (strict validation), the job
  table entry and the cooperative stop guard,
* :mod:`repro.service.executor` — the worker threads driving jobs
  through :func:`repro.runtime.campaign.run_campaign` with per-job
  checkpoints, deadlines and budgets.

See ``docs/service.md`` for the API and operational semantics.
"""

from repro.service.jobs import Job, JobGuard, JobSpec, JobSpecError
from repro.service.journal import (
    CANCELLED,
    DONE,
    FAILED,
    INTERRUPTED,
    RECOVERABLE,
    RUNNING,
    STATES,
    SUBMITTED,
    TERMINAL,
    JobJournal,
    JournalState,
    JournalStateError,
    compact_journal,
    replay_journal,
    replay_journal_state,
)
from repro.service.server import CampaignService, ServiceConfig, serve

__all__ = [
    "CampaignService",
    "ServiceConfig",
    "serve",
    "Job",
    "JobGuard",
    "JobSpec",
    "JobSpecError",
    "JobJournal",
    "JournalState",
    "JournalStateError",
    "compact_journal",
    "replay_journal",
    "replay_journal_state",
    "SUBMITTED",
    "RUNNING",
    "INTERRUPTED",
    "DONE",
    "FAILED",
    "CANCELLED",
    "RECOVERABLE",
    "TERMINAL",
    "STATES",
]
