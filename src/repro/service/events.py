"""Bounded per-job event buffers feeding ``GET /jobs/<id>/events``.

The executor thread pushes two kinds of records into a job's buffer —
journal state transitions and campaign/fabric progress payloads — and
HTTP handler threads read them out as a long-poll batch or an SSE
stream.  The design constraint that shapes everything here:

    **a slow (or absent) consumer must never stall the executor.**

So :meth:`JobEventBuffer.push` never blocks and never grows the buffer
past its capacity: when full, the oldest record is evicted and a
``dropped`` counter bumped.  Consumers see the drop count in every
batch, so a dashboard that fell behind *knows* it has a gap instead of
silently rendering stale history.  Sequence numbers are per-job and
monotonically increasing; a consumer resumes with ``?after=<seq>`` and
detects gaps by comparing the first delivered seq against ``after+1``.
"""

import threading
import time

DEFAULT_CAPACITY = 256


class JobEventBuffer:
    """A bounded, seq-numbered event log with blocking reads."""

    def __init__(self, capacity=DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._capacity = capacity
        self._events = []
        self._next_seq = 1
        self.dropped = 0
        self.closed = False
        self._cond = threading.Condition()

    def push(self, kind, payload=None):
        """Append one event; never blocks, evicts oldest when full.

        Returns the event's seq (or ``None`` after :meth:`close` —
        late pushes from a racing progress hook are dropped silently,
        the terminal state event is already the last word).
        """
        with self._cond:
            if self.closed:
                return None
            event = {"seq": self._next_seq, "kind": kind,
                     "ts": round(time.time(), 3)}
            if payload:
                event.update(
                    (k, v) for k, v in payload.items()
                    if k not in ("seq", "kind", "ts")
                )
            self._next_seq += 1
            self._events.append(event)
            if len(self._events) > self._capacity:
                evict = len(self._events) - self._capacity
                del self._events[:evict]
                self.dropped += evict
            self._cond.notify_all()
            return event["seq"]

    def close(self):
        """Mark the stream complete; wakes all blocked readers."""
        with self._cond:
            self.closed = True
            self._cond.notify_all()

    def after(self, seq=0, timeout=None):
        """Events with seq > *seq*, blocking up to *timeout* for news.

        Returns ``(events, dropped_total, closed)``.  An empty event
        list with ``closed=True`` means the stream is over; empty with
        ``closed=False`` means the timeout elapsed (long-poll clients
        simply re-request).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                batch = [e for e in self._events if e["seq"] > seq]
                if batch or self.closed:
                    return list(batch), self.dropped, self.closed
                if deadline is None:
                    remaining = None
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return [], self.dropped, False
                self._cond.wait(timeout=remaining)

    def stats(self):
        with self._cond:
            return {
                "buffered": len(self._events),
                "dropped": self.dropped,
                "next_seq": self._next_seq,
                "closed": self.closed,
            }
