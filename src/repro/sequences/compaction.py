"""Static test-sequence compaction under the MOT strategies.

Ref [14] of the paper ("Increasing fault coverage ... by the multiple
observation time test strategy") motivates MOT partly as a way to get
more out of *existing* sequences; the complementary operation is to
shrink a sequence without losing coverage.  Two classic static steps:

1. **truncation** — cut everything after the last detection (for
   sequential circuits a suffix that detects nothing contributes
   nothing),
2. **reverse greedy vector removal** — try dropping one vector at a
   time (last to first); keep the removal when re-simulation confirms
   the detected-fault set did not shrink.  Removal trials re-simulate
   from scratch because dropping a vector changes the entire state
   trajectory after it.

Both steps are exact with respect to the chosen strategy: the
compacted sequence detects a superset-or-equal set of the original's
detected faults (equality enforced, supersets accepted).
"""

from repro.faults.status import FaultSet
from repro.symbolic.fault_sim import symbolic_fault_simulate


class CompactionResult:
    def __init__(self, original, compacted, detected, removals, strategy):
        self.original = original
        self.compacted = compacted
        self.detected = detected  # set of fault keys
        self.removals = removals  # vectors dropped by greedy removal
        self.strategy = strategy

    @property
    def original_length(self):
        return len(self.original)

    @property
    def compacted_length(self):
        return len(self.compacted)

    def __repr__(self):
        return (
            f"CompactionResult({self.strategy}: "
            f"{self.original_length} -> {self.compacted_length} vectors, "
            f"{len(self.detected)} faults kept)"
        )


def detected_set(compiled, sequence, faults, strategy="MOT",
                 initial_state=None):
    """Fault keys detected by *sequence* under *strategy*, with times."""
    fault_set = FaultSet(list(faults))
    symbolic_fault_simulate(
        compiled, sequence, fault_set, strategy=strategy,
        initial_state=initial_state,
    )
    return {
        record.fault.key(): record.detected_at
        for record in fault_set.detected()
    }


def truncate_to_last_detection(compiled, sequence, faults,
                               strategy="MOT", initial_state=None):
    """Step 1: drop the undetecting suffix."""
    detections = detected_set(
        compiled, sequence, faults, strategy, initial_state
    )
    if not detections:
        return [], detections
    last = max(detections.values())
    return list(sequence[:last]), detections


def compact_sequence(
    compiled,
    sequence,
    faults,
    strategy="MOT",
    initial_state=None,
    greedy=True,
    max_trials=None,
):
    """Full compaction: truncation, then reverse greedy removal."""
    faults = list(faults)
    sequence = list(sequence)
    baseline = detected_set(
        compiled, sequence, faults, strategy, initial_state
    )
    target = set(baseline)

    compacted, _ = truncate_to_last_detection(
        compiled, sequence, faults, strategy, initial_state
    )
    removals = []
    if greedy and compacted:
        trials = 0
        position = len(compacted) - 1
        while position >= 0:
            if max_trials is not None and trials >= max_trials:
                break
            trial = compacted[:position] + compacted[position + 1:]
            trials += 1
            kept = set(
                detected_set(compiled, trial, faults, strategy,
                             initial_state)
            )
            if target <= kept:
                removals.append(compacted[position])
                compacted = trial
            position -= 1

    final = set(
        detected_set(compiled, compacted, faults, strategy, initial_state)
    )
    if not target <= final:
        raise AssertionError("compaction lost coverage — bug")
    return CompactionResult(sequence, compacted, final, removals,
                            strategy)
