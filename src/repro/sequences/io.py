"""Plain-text I/O for test sequences and test responses.

Format: one vector per line, characters ``0``/``1`` (``X`` allowed for
three-valued response files), ``#`` comments, blank lines ignored::

    # 4-input sequence
    1010
    0110
"""

from repro.logic import threeval as tv


def dumps_sequence(sequence, comment=None):
    """Render a sequence (list of bit tuples) as text."""
    lines = []
    if comment:
        for part in comment.splitlines():
            lines.append(f"# {part}")
    for vector in sequence:
        lines.append("".join(tv.to_char(bit) for bit in vector))
    return "\n".join(lines) + "\n"


def loads_sequence(text, allow_x=False):
    """Parse sequence text into a list of tuples."""
    sequence = []
    width = None
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        vector = tuple(tv.from_char(c) for c in line)
        if not allow_x and any(bit == tv.X for bit in vector):
            raise ValueError(f"line {line_no}: X not allowed here")
        if width is None:
            width = len(vector)
        elif len(vector) != width:
            raise ValueError(
                f"line {line_no}: width {len(vector)} != {width}"
            )
        sequence.append(vector)
    return sequence


def save_sequence(sequence, path, comment=None):
    with open(path, "w") as handle:
        handle.write(dumps_sequence(sequence, comment))


def load_sequence(path, allow_x=False):
    with open(path) as handle:
        return loads_sequence(handle.read(), allow_x=allow_x)


def save_response(response, path, comment=None):
    """A response is a list of per-frame output bit lists."""
    save_sequence([tuple(frame) for frame in response], path, comment)


def load_response(path):
    return [list(frame) for frame in load_sequence(path, allow_x=False)]
