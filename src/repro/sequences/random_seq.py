"""Seeded random test sequences (the workload of Tables I and II)."""

import random


def random_sequence(num_inputs, length, seed=0):
    """*length* fully specified random vectors over *num_inputs* bits."""
    rng = random.Random(seed)
    return [
        tuple(rng.randrange(2) for _ in range(num_inputs))
        for _ in range(length)
    ]


def random_sequence_for(circuit, length, seed=0):
    """Like :func:`random_sequence`, sized for *circuit* (compiled or
    netlist)."""
    num_inputs = getattr(circuit, "num_pis", None)
    if num_inputs is None:
        num_inputs = circuit.num_inputs
    return random_sequence(num_inputs, length, seed)
