"""Greedy deterministic test-sequence generation.

Stand-in for the deterministic (HITEC-class) test sets of Table III
(see DESIGN.md): at every time step a handful of candidate vectors is
scored by how many still-undetected faults a three-valued simulation
would detect right now (with progress in fault *activity* as a tie
breaker), the best one is committed, and generation stops once the
coverage stops improving.  The result is what the experiment needs —
a compact, fault-oriented sequence whose length varies per circuit.
"""

import random

from repro.engines.algebra import THREE_VALUED
from repro.engines.evaluate import next_state_of, simulate_frame
from repro.engines.propagate import propagate_fault
from repro.engines.serial_fault_sim import _check_sot_detection
from repro.faults.status import UNDETECTED, FaultSet
from repro.logic import threeval


def _score_vector(compiled, vector, good_state, live, diffs):
    """Score of applying *vector* now; no commitment.

    Ordered criteria: faults detected right now, then how many good
    next-state bits become known (drives the machine towards an
    initialised — hence observable — state), then fault activity.
    """
    algebra = THREE_VALUED
    good_values = simulate_frame(compiled, algebra, vector, good_state)
    known_bits = sum(
        1
        for sig in compiled.dff_d
        if algebra.is_known(good_values[sig])
    )
    detections = 0
    activity = 0
    for record in live:
        result = propagate_fault(
            compiled, algebra, good_values, record.fault, diffs[id(record)]
        )
        if _check_sot_detection(compiled, good_values, result, algebra):
            detections += 1
        activity += len(result.next_state_diff)
    return (detections, known_bits, activity), good_values


def deterministic_sequence(
    compiled,
    faults,
    max_length=400,
    candidates=4,
    patience=20,
    seed=0,
):
    """Generate a compact fault-oriented sequence for *compiled*.

    *faults* may be a fault list or a :class:`FaultSet`; the generator
    works on its own copy of the statuses and does not mutate inputs.
    Returns the list of input vectors.
    """
    rng = random.Random(seed)
    if isinstance(faults, FaultSet):
        faults = [r.fault for r in faults.records]
    fault_set = FaultSet(faults)

    live = list(fault_set.undetected())
    diffs = {id(r): {} for r in live}
    good_state = [threeval.X] * compiled.num_dffs

    sequence = []
    stale = 0
    while len(sequence) < max_length and live and stale < patience:
        best = None
        for _ in range(candidates):
            vector = tuple(
                rng.randrange(2) for _ in range(compiled.num_pis)
            )
            score, good_values = _score_vector(
                compiled, vector, good_state, live, diffs
            )
            if best is None or score > best[1]:
                best = (vector, score, good_values)
        vector, score, good_values = best
        detections = score[0]

        # commit the chosen vector
        sequence.append(vector)
        algebra = THREE_VALUED
        next_live = []
        for record in live:
            result = propagate_fault(
                compiled, algebra, good_values, record.fault,
                diffs[id(record)],
            )
            if _check_sot_detection(compiled, good_values, result, algebra):
                record.mark_detected("3-valued", len(sequence))
                del diffs[id(record)]
            else:
                diffs[id(record)] = result.next_state_diff
                next_live.append(record)
        live = next_live
        good_state = next_state_of(compiled, good_values)
        stale = 0 if detections else stale + 1
    return sequence
