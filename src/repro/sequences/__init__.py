"""Test-sequence generation (seeded random, greedy deterministic) and
plain-text sequence/response I/O."""

from repro.sequences.random_seq import random_sequence, random_sequence_for
from repro.sequences.deterministic import deterministic_sequence
from repro.sequences.io import (
    dumps_sequence,
    load_response,
    load_sequence,
    loads_sequence,
    save_response,
    save_sequence,
)

__all__ = [
    "random_sequence",
    "random_sequence_for",
    "deterministic_sequence",
    "dumps_sequence",
    "loads_sequence",
    "save_sequence",
    "load_sequence",
    "save_response",
    "load_response",
]
