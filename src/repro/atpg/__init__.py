"""MOT-guided test generation on top of the symbolic fault simulator."""

from repro.atpg.generator import AtpgResult, generate_mot_tests

__all__ = ["AtpgResult", "generate_mot_tests"]
