"""MOT-guided test generation.

The paper's introduction argues that "MOT-based test generation should
be supported by a MOT-based fault simulation to obtain the full power
of the MOT strategy" — this module closes that loop: a simulation-based
test generator that grows a sequence vector by vector, scoring each
candidate vector with the *symbolic* fault simulator.

Scoring per candidate (lexicographic):

1. faults detected right now under the chosen strategy,
2. detection-function progress — the number of live faults whose
   accumulated detection function shrank (fewer satisfying (x, y)
   pairs means closer to ``D == 0``),
3. total remaining satisfying-assignment mass of the detection
   functions (lower is better).

Candidate trials run on a cloned :class:`SymbolicSession`, so a
discarded candidate costs only the BDD nodes it created (which the
next garbage collection reclaims).
"""

import random

from repro.faults.status import UNDETECTED, FaultSet
from repro.symbolic.fault_sim import SymbolicSession
from repro.symbolic.strategies import get_strategy


class AtpgResult:
    """Outcome of a MOT-guided generation run."""

    def __init__(self, sequence, fault_set, strategy_name):
        self.sequence = sequence
        self.fault_set = fault_set
        self.strategy = strategy_name

    @property
    def detected(self):
        return self.fault_set.detected()

    def coverage(self):
        return self.fault_set.coverage()

    def __repr__(self):
        counts = self.fault_set.counts()
        return (
            f"AtpgResult({self.strategy}, |T|={len(self.sequence)}, "
            f"{counts['detected']}/{counts['total']} detected)"
        )


def _acc_mass(session, entry):
    """Satisfying-assignment count of a fault's detection function."""
    acc = entry[2]
    if acc is None:
        return 0
    manager = session.manager
    support = manager.support(acc)
    return manager.sat_count(acc, support) / (1 << len(support)) \
        if support else manager.const_value(acc) or 0


def _score_candidate(session, vector):
    """Run *vector* on a clone; return (score_tuple, trial_session)."""
    trial = session.clone()
    before = {
        key: entry[2] for key, entry in trial._store.items()
    }
    detected = trial.step(vector, mark_detected=False)
    changed = 0
    mass = 0.0
    for key, entry in trial._store.items():
        if entry[2] != before.get(key):
            changed += 1
        mass += _acc_mass(trial, entry)
    score = (len(detected), changed, -mass)
    return score, trial, detected


def generate_mot_tests(
    compiled,
    faults,
    strategy="MOT",
    max_length=64,
    candidates=4,
    patience=12,
    seed=0,
    node_limit=None,
    initial_state=None,
):
    """Generate a test sequence targeting *faults* under *strategy*.

    *faults* may be a list or a :class:`FaultSet`; statuses are updated
    in place (pass ``fault_set.symbolic_candidates()`` leftovers from a
    conventional pass to target exactly the hard faults).  Returns an
    :class:`AtpgResult`.
    """
    rng = random.Random(seed)
    if not isinstance(faults, FaultSet):
        faults = FaultSet(faults)
    strategy_obj = get_strategy(strategy) if isinstance(strategy, str) \
        else strategy

    session = SymbolicSession(
        compiled,
        strategy_obj,
        good_state_3v=initial_state,
        node_limit=node_limit,
    )
    session.attach_faults(faults.symbolic_candidates())

    sequence = []
    stale = 0
    while (
        len(sequence) < max_length
        and session.live_records()
        and stale < patience
    ):
        tried = set()
        best = None
        for _ in range(candidates):
            vector = tuple(
                rng.randrange(2) for _ in range(compiled.num_pis)
            )
            if vector in tried:
                continue
            tried.add(vector)
            score, trial, detected = _score_candidate(session, vector)
            if best is None or score > best[0]:
                best = (score, vector, trial, detected)
        _score, vector, trial, detected = best
        # commit: the trial session becomes the session; now mark
        for record in detected:
            record.mark_detected(strategy_obj.detected_by, trial.time)
        session = trial
        sequence.append(vector)
        stale = 0 if detected else stale + 1
    return AtpgResult(sequence, faults, strategy_obj.name)
