"""Multi-valued logic algebras used throughout the fault simulator.

Three algebras appear in the paper:

* plain Boolean logic (``repro.logic.boolean``) — used by the explicit
  enumeration baselines and as the reference semantics of every gate;
* the three-valued logic 0/1/X (``repro.logic.threeval``) — the classic
  unknown-initial-state simulation logic;
* the four-valued lattice {X}, {X,0}, {X,1}, {X,0,1}
  (``repro.logic.fourval``) — the value-history encoding used by the
  ``ID_X-red`` procedure of Section III.
"""

from repro.logic.threeval import (
    X,
    ZERO,
    ONE,
    and3,
    or3,
    not3,
    xor3,
    is_known,
    to_char,
    from_char,
)
from repro.logic.fourval import (
    IX_X,
    IX_X0,
    IX_X1,
    IX_X01,
    ix_join,
    ix_from_threeval,
    ix_saw_zero,
    ix_saw_one,
    ix_to_str,
)

__all__ = [
    "X",
    "ZERO",
    "ONE",
    "and3",
    "or3",
    "not3",
    "xor3",
    "is_known",
    "to_char",
    "from_char",
    "IX_X",
    "IX_X0",
    "IX_X1",
    "IX_X01",
    "ix_join",
    "ix_from_threeval",
    "ix_saw_zero",
    "ix_saw_one",
    "ix_to_str",
]
