"""Plain Boolean gate semantics.

Used by the explicit-enumeration baselines (which simulate from fully
specified initial states) and as the reference semantics every other
algebra must agree with on known values.
"""

from functools import reduce


def and2(a, b):
    return a & b


def or2(a, b):
    return a | b


def xor2(a, b):
    return a ^ b


def not2(a):
    return 1 - a


def andn(values):
    return reduce(and2, values)


def orn(values):
    return reduce(or2, values)


def xorn(values):
    return reduce(xor2, values)
