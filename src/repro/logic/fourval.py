"""The four-valued lattice used by ``ID_X-red`` (Section III, Step 1).

Each lead accumulates the set of Boolean values it assumed during the
three-valued true-value simulation of the whole test sequence.  The four
possible sets are encoded as a 2-bit integer:

* bit 0 set — the lead was 0 at some time step,
* bit 1 set — the lead was 1 at some time step.

which yields the paper's lattice elements::

    IX_X   = 0b00   {X}        never 0, never 1
    IX_X0  = 0b01   {X, 0}     was 0 at least once, never 1
    IX_X1  = 0b10   {X, 1}     was 1 at least once, never 0
    IX_X01 = 0b11   {X, 0, 1}  assumed both values

(The value X itself is always a member: the simulation starts from an
unknown state, so every lead is potentially X.)
"""

from repro.logic import threeval

IX_X = 0b00
IX_X0 = 0b01
IX_X1 = 0b10
IX_X01 = 0b11

_STRS = {IX_X: "{X}", IX_X0: "{X,0}", IX_X1: "{X,1}", IX_X01: "{X,0,1}"}


def ix_join(a, b):
    """Lattice join: union of the value sets."""
    return a | b


def ix_from_threeval(v):
    """The singleton history contributed by one three-valued value."""
    if v == threeval.ZERO:
        return IX_X0
    if v == threeval.ONE:
        return IX_X1
    return IX_X


def ix_saw_zero(a):
    """True when the lead assumed the value 0 at some time step."""
    return bool(a & IX_X0)


def ix_saw_one(a):
    """True when the lead assumed the value 1 at some time step."""
    return bool(a & IX_X1)


def ix_to_str(a):
    """Render the lattice element the way the paper writes it."""
    return _STRS[a]
