"""Three-valued (0/1/X) logic.

Values are plain integers so they can index the precomputed operator
tables directly:

* ``ZERO`` (0) — the Boolean constant 0,
* ``ONE`` (1) — the Boolean constant 1,
* ``X`` (2) — the unknown value.

The tables implement the standard pessimistic three-valued semantics:
a gate output is known only if it is forced by its known inputs.
"""

ZERO = 0
ONE = 1
X = 2

_VALUES = (ZERO, ONE, X)

# Operator tables indexed as TABLE[a][b].
_AND = (
    (ZERO, ZERO, ZERO),
    (ZERO, ONE, X),
    (ZERO, X, X),
)
_OR = (
    (ZERO, ONE, X),
    (ONE, ONE, ONE),
    (X, ONE, X),
)
_XOR = (
    (ZERO, ONE, X),
    (ONE, ZERO, X),
    (X, X, X),
)
_NOT = (ONE, ZERO, X)

_CHARS = "01X"


def and3(a, b):
    """Three-valued AND."""
    return _AND[a][b]


def or3(a, b):
    """Three-valued OR."""
    return _OR[a][b]


def xor3(a, b):
    """Three-valued XOR (X-pessimistic: any unknown input yields X)."""
    return _XOR[a][b]


def not3(a):
    """Three-valued NOT."""
    return _NOT[a]


def is_known(a):
    """Return True when *a* is a Boolean constant (0 or 1), not X."""
    return a != X


def to_char(a):
    """Render a three-valued value as '0', '1' or 'X'."""
    return _CHARS[a]


def from_char(c):
    """Parse '0', '1', 'x' or 'X' into a three-valued value."""
    if c == "0":
        return ZERO
    if c == "1":
        return ONE
    if c in ("x", "X"):
        return X
    raise ValueError(f"not a three-valued literal: {c!r}")


def all_values():
    """The three values, mostly for exhaustive tests."""
    return _VALUES
