"""Fault-simulation result reporting: text summaries and JSON export.

The paper reports three nested coverage figures; a report makes the
nesting explicit:

* **proved coverage** — faults the conventional three-valued SOT flow
  detects (the guaranteed lower bound everybody computes),
* **symbolic coverage** — plus the faults the symbolic SOT/rMOT/MOT
  passes detect,
* **undetectability** — with an exact MOT run, the remaining faults are
  *proved* undetectable by this sequence (not merely unclassified).
"""

import json

from repro.faults.status import (
    BY_3V,
    BY_MOT,
    BY_RMOT,
    BY_SOT,
    DETECTED,
    UNDETECTED,
    X_REDUNDANT,
)


def _format_bytes(n):
    """Human-readable binary size: 1536 → '1.5K', 512 → '512'."""
    value = float(n)
    for unit in ("", "K", "M", "G", "T"):
        if abs(value) < 1024 or unit == "T":
            text = f"{value:.1f}".rstrip("0").rstrip(".")
            return f"{text}{unit}"
        value /= 1024


class CoverageReport:
    """Summary of a (possibly multi-stage) fault-simulation run."""

    def __init__(self, compiled, fault_set, sequence_length=None,
                 exact_mot=False, runtime_info=None):
        self.compiled = compiled
        self.fault_set = fault_set
        self.sequence_length = sequence_length
        self.exact_mot = exact_mot
        # optional CampaignResult.runtime_summary() dict: stop reason,
        # budgets, degradation and checkpoint accounting
        self.runtime_info = runtime_info

    # ------------------------------------------------------------------
    def by_strategy(self):
        """Detected-fault count per detecting strategy."""
        counts = {BY_3V: 0, BY_SOT: 0, BY_RMOT: 0, BY_MOT: 0}
        for record in self.fault_set.detected():
            counts[record.detected_by] = counts.get(
                record.detected_by, 0
            ) + 1
        return counts

    def summary(self):
        counts = self.fault_set.counts()
        strategies = self.by_strategy()
        total = counts["total"]
        conventional = strategies.get(BY_3V, 0)
        symbolic_extra = counts["detected"] - conventional
        payload = {
            "total_faults": total,
            "detected": counts["detected"],
            "undetected": counts["undetected"],
            "x_redundant_remaining": counts["x_redundant"],
            "quarantined": counts["quarantined"],
            "coverage": counts["detected"] / total if total else 0.0,
            "conventional_detected": conventional,
            "symbolic_extra_detected": symbolic_extra,
            "detected_by": strategies,
            "sequence_length": self.sequence_length,
            "exact_mot": self.exact_mot,
        }
        if self.runtime_info is not None:
            payload["runtime"] = self.runtime_info
        return payload

    # ------------------------------------------------------------------
    def render(self):
        s = self.summary()
        lines = [
            f"fault coverage report"
            + (f" (|T| = {s['sequence_length']})"
               if s["sequence_length"] else ""),
            f"  faults total:             {s['total_faults']}",
            f"  detected:                 {s['detected']}"
            f"  ({100 * s['coverage']:.1f}%)",
            f"    by 3-valued SOT:        {s['conventional_detected']}",
        ]
        for name in (BY_SOT, BY_RMOT, BY_MOT):
            if s["detected_by"].get(name):
                lines.append(
                    f"    by symbolic {name}:".ljust(28)
                    + f"{s['detected_by'][name]}"
                )
        lines.append(
            f"  unclassified:             "
            f"{s['undetected'] + s['x_redundant_remaining']}"
        )
        if s["quarantined"]:
            lines.append(
                f"  quarantined:              {s['quarantined']}"
            )
        if self.exact_mot:
            lines.append(
                "  (exact MOT run: every unclassified fault is PROVED "
                "undetectable by this sequence)"
            )
        if self.runtime_info is not None:
            r = self.runtime_info
            lines.append(
                f"  campaign: {r['stopped']} after {r['frames_total']} "
                f"frames ({r['frames_symbolic']} symbolic, "
                f"{r['frames_three_valued']} three-valued)"
            )
            demotions_text = str(r["demotions"])
            reasons = r.get("demotion_reasons")
            if r["demotions"] and reasons:
                demotions_text += " (" + ", ".join(
                    f"{name} {count}" for name, count in reasons.items()
                ) + ")"
            lines.append(
                f"    fallbacks {r['fallbacks']}, demotions "
                f"{demotions_text}, gc runs {r['gc_runs']}, "
                f"checkpoints {r['checkpoints_written']}"
            )
            if r.get("resumed_from") is not None:
                lines.append(
                    f"    resumed from frame {r['resumed_from']}"
                )
            pressure = r.get("pressure")
            if pressure is not None:
                detail = []
                for key in ("cache_evictions", "gc_runs",
                            "reorder_rescues", "nodes_freed"):
                    if pressure.get(key):
                        detail.append(f"{key.replace('_', ' ')} "
                                      f"{pressure[key]}")
                if pressure.get("peak_rss"):
                    detail.append(
                        f"peak rss {_format_bytes(pressure['peak_rss'])}"
                    )
                lines.append(
                    f"  pressure: {pressure.get('events', 0)} events"
                    + (" (" + ", ".join(detail) + ")" if detail else "")
                )
            audit = r.get("audit")
            if audit is not None:
                lines.append(
                    f"  audit ({audit['mode']}): "
                    f"{audit['confirmed']} confirmed, "
                    f"{audit['refuted']} refuted, "
                    f"{audit['inconclusive']} inconclusive, "
                    f"{audit['extraction_failed']} extraction-failed "
                    f"({100 * audit['sampled_fraction']:.1f}% of "
                    f"detections audited)"
                )
                for name in audit.get("refuted_faults") or ():
                    lines.append(f"    REFUTED {name}")
                if not audit["ok"]:
                    lines.append(
                        "    AUDIT FAILED: campaign verdicts are "
                        "unsound (refuted faults quarantined)"
                    )
            fabric = r.get("fabric")
            if fabric is not None:
                lines.append(
                    f"  fabric: {fabric['workers']} workers, "
                    f"{fabric['shards_completed']}/"
                    f"{fabric['shards_planned']} shards"
                )
                detail = []
                for key in ("retries", "respawns", "bisections",
                            "timeouts", "quarantined_by_crash",
                            "rss_recycles"):
                    if fabric.get(key):
                        detail.append(f"{key.replace('_', ' ')} "
                                      f"{fabric[key]}")
                if fabric.get("peak_worker_rss"):
                    detail.append(
                        "peak worker rss "
                        f"{_format_bytes(fabric['peak_worker_rss'])}"
                    )
                if fabric.get("resumed_shards"):
                    detail.append(
                        f"resumed shards {fabric['resumed_shards']}"
                    )
                if detail:
                    lines.append("    " + ", ".join(detail))
        return "\n".join(lines)

    def to_json(self):
        payload = self.summary()
        payload["faults"] = [
            {
                "fault": record.fault.describe(self.compiled),
                "status": record.status,
                "detected_by": record.detected_by,
                "detected_at": record.detected_at,
            }
            for record in self.fault_set
        ]
        return json.dumps(payload, indent=2)


def coverage_report(compiled, fault_set, sequence=None, exact_mot=False,
                    runtime_info=None):
    """Build a :class:`CoverageReport`."""
    length = len(sequence) if sequence is not None else None
    return CoverageReport(compiled, fault_set, length, exact_mot,
                          runtime_info=runtime_info)
