"""Symbolic test evaluation (Section IV.B, Table IV).

Given a test sequence Z determined under the (r)MOT strategy and the
response ``c(1..n)`` observed on the circuit-under-test, decide whether
the CUT is faulty.  Enumerating the fault-free machine's output
sequences (one per initial state) can be exponential in the number of
memory elements; the paper instead compares the observed response with
the *symbolic* output sequence by evaluating

    prod_{t=1..n} prod_{j=1..l} [ o_j(x,t) == c_j(t) ]

step by step — the CUT is faulty iff the product is the constant 0
(no initial state of the fault-free machine explains the response).

Like the fault simulator, the construction of the symbolic output
sequence honours a node limit: when it is exceeded, a prefix of the
sequence is (re)simulated three-valued and the symbolic simulation
restarts from the reached state with fresh variables (this is the
asterisk on s5378 in Table IV).  Restarts only ever *grow* the set of
accepted responses, so a "faulty" verdict remains sound.
"""

from repro.bdd import BddManager, StateVariables
from repro.bdd.errors import SpaceLimitExceeded
from repro.bdd.manager import FALSE, TRUE
from repro.engines.algebra import BOOL, THREE_VALUED, BddAlgebra
from repro.engines.evaluate import next_state_of, outputs_of, simulate_frame
from repro.logic import threeval


class SymbolicOutputSequence:
    """The fault-free circuit's symbolic response to a test sequence.

    ``frames`` is a list with one entry per time step, either
    ``("sym", manager, [po_bdd, ...])`` or ``("3v", [po_value, ...])``
    for frames that had to be simulated three-valued.
    """

    def __init__(self, compiled, frames, restarts):
        self.compiled = compiled
        self.frames = frames
        self.restarts = restarts

    @property
    def exact(self):
        """True when every frame is symbolic and no restart happened."""
        return self.restarts == 0 and all(
            kind == "sym" for kind, *_ in self.frames
        )

    def bdd_size(self):
        """Shared OBDD size of the symbolic output sequence (Table IV)."""
        by_manager = {}
        for entry in self.frames:
            if entry[0] != "sym":
                continue
            _kind, manager, pos = entry
            by_manager.setdefault(id(manager), (manager, []))[1].extend(pos)
        total = 0
        for manager, roots in by_manager.values():
            total += manager.size(roots)
        return total

    # ------------------------------------------------------------------
    def evaluate(self, response):
        """Check *response* (list of per-frame PO bit vectors).

        Returns ``(consistent, first_conflict)``: *consistent* is False
        when the CUT is certainly faulty; *first_conflict* is the
        1-based frame where the product collapsed to 0 (None if it
        never did).
        """
        if len(response) != len(self.frames):
            raise ValueError(
                f"response has {len(response)} frames, expected "
                f"{len(self.frames)}"
            )
        products = {}  # id(manager) -> running product
        lifted = {}  # id(manager) -> original node limit
        try:
            for time, (entry, observed) in enumerate(
                zip(self.frames, response), start=1
            ):
                if entry[0] == "3v":
                    for value, bit in zip(entry[1], observed):
                        if value != threeval.X and value != bit:
                            return False, time
                    continue
                _kind, manager, pos = entry
                if id(manager) not in lifted:
                    # the construction phase may have filled the table to
                    # its limit; the (small) evaluation products must not
                    # die on it
                    lifted[id(manager)] = (manager, manager.node_limit)
                    manager.node_limit = None
                product = products.get(id(manager), TRUE)
                for po_bdd, bit in zip(pos, observed):
                    literal = po_bdd if bit else manager.not_(po_bdd)
                    product = manager.and_(product, literal)
                    if product == FALSE:
                        return False, time
                products[id(manager)] = product
            return True, None
        finally:
            for manager, limit in lifted.values():
                manager.node_limit = limit


def symbolic_output_sequence(
    compiled,
    sequence,
    initial_state=None,
    node_limit=None,
    max_restarts=8,
):
    """Build the :class:`SymbolicOutputSequence` for *sequence*."""
    vectors = list(sequence)
    if initial_state is None:
        initial_state = [threeval.X] * compiled.num_dffs

    frames = []
    restarts = 0
    time = 0
    state_3v = list(initial_state)

    while time < len(vectors):
        state_vars = StateVariables(compiled.num_dffs)
        manager = BddManager(
            num_vars=compiled.num_dffs, node_limit=node_limit
        )
        algebra = BddAlgebra(manager)
        state = [
            manager.mk_var(state_vars.x(i))
            if value == threeval.X
            else manager.const(value)
            for i, value in enumerate(state_3v)
        ]
        try:
            while time < len(vectors):
                pi_values = [algebra.const(b) for b in vectors[time]]
                values = simulate_frame(compiled, algebra, pi_values, state)
                frames.append(
                    ("sym", manager, outputs_of(compiled, values))
                )
                state = next_state_of(compiled, values)
                time += 1
            break
        except SpaceLimitExceeded:
            if restarts >= max_restarts:
                # give up on symbolic evaluation for the remainder
                break
            restarts += 1
            # one three-valued frame to guarantee progress, then retry
            pi_values = list(vectors[time])
            state_3v = [
                _bdd_to_3v(manager, b) for b in state
            ]
            values = simulate_frame(
                compiled, THREE_VALUED, pi_values, state_3v
            )
            frames.append(("3v", outputs_of(compiled, values)))
            state_3v = next_state_of(compiled, values)
            time += 1

    # exhausted restarts: finish three-valued
    while time < len(vectors):
        values = simulate_frame(
            compiled, THREE_VALUED, list(vectors[time]), state_3v
        )
        frames.append(("3v", outputs_of(compiled, values)))
        state_3v = next_state_of(compiled, values)
        time += 1

    return SymbolicOutputSequence(compiled, frames, restarts)


def _bdd_to_3v(manager, bdd):
    value = manager.const_value(bdd)
    return threeval.X if value is None else value


def generate_response(compiled, sequence, initial_state, fault=None):
    """Concrete Boolean response of the (optionally faulty) machine.

    Used by the Table IV experiment to synthesise circuit-under-test
    responses: a fault-free response from a known initial state must be
    accepted by :meth:`SymbolicOutputSequence.evaluate`, a sufficiently
    corrupted one rejected.
    """
    from repro.engines.propagate import propagate_fault

    state = [1 if b else 0 for b in initial_state]
    if len(state) != compiled.num_dffs:
        raise ValueError("initial state width mismatch")
    diff = {}
    response = []
    for vector in sequence:
        values = simulate_frame(compiled, BOOL, list(vector), state)
        if fault is None:
            response.append(outputs_of(compiled, values))
        else:
            result = propagate_fault(compiled, BOOL, values, fault, diff)
            response.append(
                [
                    result.faulty_value(values, sig)
                    for sig in compiled.pos
                ]
            )
            diff = result.next_state_diff
        state = next_state_of(compiled, values)
    return response
