"""Observation-time strategies: SOT, rMOT and MOT (Section IV.A).

All three run on top of the same event-driven symbolic fault
propagation; they differ only in what happens when fault effects (may)
reach the primary outputs of a time frame:

* **SOT** — the fault is detected when some PO has a *constant*
  fault-free value b and the *constant* faulty value ~b.
* **rMOT** — good and faulty machine share the initial-state variables
  x; for every PO whose fault-free value is constant, the equivalence
  ``[o_i(x,t) == o_i^f(x,t)]`` is multiplied into the per-fault
  detection function; detected when it collapses to 0.
* **MOT** — the faulty machine conceptually starts from its own
  variables y; faulty PO functions are renamed ``x -> y`` (the paper's
  compose step) and *every* PO contributes an equivalence term, whether
  or not fault effects reached it (two identical functions of x and y
  are still a non-trivial constraint between the two initial states).

Each strategy is stateless; per-fault accumulator state (the detection
function) is held by the simulator and passed in.
"""

from repro.bdd.manager import FALSE
from repro.faults.status import BY_MOT, BY_RMOT, BY_SOT


class FrameContext:
    """Shared per-frame data handed to the strategies.

    ``good_po`` holds the fault-free PO functions of this frame.  The
    renamed copies ``good_po(y)`` and the cross terms
    ``[good_po(x) == good_po(y)]`` needed by MOT are cached lazily so
    they are built once per frame, not once per fault.
    """

    def __init__(self, manager, state_vars, good_po):
        self.manager = manager
        self.state_vars = state_vars
        self.good_po = good_po
        self._rename_map = state_vars.x_to_y() if state_vars else None
        self._good_po_y = {}
        self._good_cross_term = {}
        self._good_cross_product = None

    def rename_to_y(self, function):
        return self.manager.rename(function, self._rename_map)

    def good_po_y(self, po_pos):
        """Cached ``o_i(y, t)``."""
        found = self._good_po_y.get(po_pos)
        if found is None:
            found = self.rename_to_y(self.good_po[po_pos])
            self._good_po_y[po_pos] = found
        return found

    def good_cross_term(self, po_pos):
        """Cached ``[o_i(x,t) == o_i(y,t)]`` for unreached POs."""
        found = self._good_cross_term.get(po_pos)
        if found is None:
            found = self.manager.xnor(
                self.good_po[po_pos], self.good_po_y(po_pos)
            )
            self._good_cross_term[po_pos] = found
        return found

    def good_cross_product(self):
        """Cached ``prod_i [o_i(x,t) == o_i(y,t)]`` for silent faults."""
        if self._good_cross_product is None:
            product = self.manager.const(1)
            for po_pos in range(len(self.good_po)):
                product = self.manager.and_(
                    product, self.good_cross_term(po_pos)
                )
            self._good_cross_product = product
        return self._good_cross_product


class SotStrategy:
    """Single observation time (the symbolic simulator of [8])."""

    name = "SOT"
    detected_by = BY_SOT
    needs_y_variables = False

    def initial_state(self, manager):
        return None  # SOT keeps no per-fault accumulator

    def observe(self, ctx, acc, po_diff):
        """Return ``(detected, new_accumulator)`` for this frame."""
        manager = ctx.manager
        for po_pos, faulty in po_diff.items():
            good = ctx.good_po[po_pos]
            if (
                manager.is_const(good)
                and manager.is_const(faulty)
                and good != faulty
            ):
                return True, acc
        return False, acc


class RmotStrategy:
    """Restricted MOT: shared variables, well-defined outputs only."""

    name = "rMOT"
    detected_by = BY_RMOT
    needs_y_variables = False

    def initial_state(self, manager):
        from repro.bdd.manager import TRUE

        return TRUE

    def observe(self, ctx, acc, po_diff):
        manager = ctx.manager
        for po_pos, faulty in po_diff.items():
            good = ctx.good_po[po_pos]
            if not manager.is_const(good):
                continue  # rMOT only observes well-defined outputs
            acc = manager.and_(acc, manager.xnor(good, faulty))
            if acc == FALSE:
                return True, acc
        return False, acc


class MotStrategy:
    """Full multiple observation time with independent y variables."""

    name = "MOT"
    detected_by = BY_MOT
    needs_y_variables = True

    def initial_state(self, manager):
        from repro.bdd.manager import TRUE

        return TRUE

    def observe(self, ctx, acc, po_diff):
        manager = ctx.manager
        if not po_diff:
            acc = manager.and_(acc, ctx.good_cross_product())
            return acc == FALSE, acc
        for po_pos in range(len(ctx.good_po)):
            faulty = po_diff.get(po_pos)
            if faulty is None:
                term = ctx.good_cross_term(po_pos)
            else:
                term = manager.xnor(
                    ctx.good_po[po_pos], ctx.rename_to_y(faulty)
                )
            acc = manager.and_(acc, term)
            if acc == FALSE:
                return True, acc
        return False, acc


_STRATEGIES = {
    "SOT": SotStrategy,
    "rMOT": RmotStrategy,
    "MOT": MotStrategy,
}


def get_strategy(name):
    """Instantiate a strategy by its paper name ('SOT', 'rMOT', 'MOT')."""
    try:
        return _STRATEGIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; choose from {sorted(_STRATEGIES)}"
        ) from None
