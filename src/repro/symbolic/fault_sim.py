"""OBDD-based symbolic fault simulation (Section IV.A).

:class:`SymbolicSession` drives one *symbolic stretch*: the unknown
present state is encoded with one BDD variable per memory element, a
symbolic true-value simulation computes the fault-free frame, and every
live fault is propagated by the same event-driven single-fault engine
the three-valued simulator uses — only over BDD values.  The chosen
observation strategy (SOT / rMOT / MOT) inspects the primary outputs
and accumulates the per-fault detection function.

A session steps one time frame at a time so the hybrid simulator can
catch :class:`~repro.bdd.errors.SpaceLimitExceeded` between (and
inside) frames, snapshot the state down to three-valued logic, and
later open a fresh session.  A step that raises leaves the session
state exactly as it was before the step.
"""

from repro.bdd import BddManager, StateVariables
from repro.bdd.errors import SpaceLimitExceeded
from repro.bdd.manager import FALSE, TRUE
from repro.bdd.ordering import RemappedStateVariables
from repro.bdd.reorder import block_window_search
from repro.engines.algebra import BddAlgebra
from repro.engines.evaluate import next_state_of, outputs_of, simulate_frame
from repro.engines.propagate import propagate_fault
from repro.faults.status import UNDETECTED, FaultSet
from repro.logic import threeval
from repro.obs.tracer import NULL_TRACER
from repro.symbolic.strategies import FrameContext, get_strategy


class SymbolicSession:
    """One symbolic stretch of the (hybrid) fault simulator."""

    def __init__(
        self,
        compiled,
        strategy,
        good_state_3v=None,
        node_limit=None,
        variable_scheme="interleaved",
        start_time=0,
    ):
        if isinstance(strategy, str):
            strategy = get_strategy(strategy)
        self.compiled = compiled
        self.strategy = strategy
        self.state_vars = StateVariables(
            compiled.num_dffs, scheme=variable_scheme
        )
        self.manager = BddManager(
            num_vars=self.state_vars.num_vars, node_limit=node_limit
        )
        self.algebra = BddAlgebra(self.manager)

        if good_state_3v is None:
            good_state_3v = [threeval.X] * compiled.num_dffs
        self.good_state = [
            self._state_bit_to_bdd(i, v) for i, v in enumerate(good_state_3v)
        ]
        # id(record) -> [record, state_diff (dict dff->bdd), accumulator]
        self._store = {}
        # start_time offsets detection times: a campaign opening a
        # session mid-sequence passes the current frame index so
        # detected_at stays absolute across session re-opens
        self.time = start_time
        # optional callback (record, nodes_allocated_this_frame) called
        # after each fault's propagation inside step(); the campaign
        # governor uses it to bound per-fault frame cost.  A raising
        # hook aborts the step without mutating the session.
        self.fault_cost_hook = None
        # optional PressureMonitor armed via attach_pressure(); step()
        # offers it the frame boundary as a safe point for GC and
        # reorder rescue
        self.pressure = None
        # observability: the campaign swaps in a live tracer/registry
        # when --trace/--metrics are requested; detections then emit
        # events carrying the detection-function BDD size
        self.tracer = NULL_TRACER
        self.metrics = None

    # ------------------------------------------------------------------
    def _state_bit_to_bdd(self, dff_idx, value3v):
        if value3v == threeval.X:
            return self.manager.mk_var(self.state_vars.x(dff_idx))
        return TRUE if value3v == threeval.ONE else FALSE

    def attach_fault(self, record, state_diff_3v=None):
        """Register a live fault, optionally with a three-valued state
        difference carried over from a three-valued interlude."""
        diff = {}
        for dff_idx, value in (state_diff_3v or {}).items():
            bdd = self._state_bit_to_bdd(dff_idx, value)
            if bdd != self.good_state[dff_idx]:
                diff[dff_idx] = bdd
        self._store[id(record)] = [
            record,
            diff,
            self.strategy.initial_state(self.manager),
        ]

    def attach_faults(self, records, diffs_3v=None):
        for record in records:
            diff = diffs_3v.get(id(record)) if diffs_3v else None
            self.attach_fault(record, diff)

    def live_records(self):
        return [entry[0] for entry in self._store.values()]

    # ------------------------------------------------------------------
    # memory pressure
    # ------------------------------------------------------------------
    def attach_pressure(self, monitor):
        """Arm memory-pressure relief for this session.

        The monitor chains onto the manager's allocation hook (after
        any governor metering already attached) and :meth:`step` calls
        its ``frame_relief`` between frames.  GC needs no caller
        cooperation beyond this: the session knows all its roots.
        """
        self.pressure = monitor
        monitor.attach(self.manager)

    def _roots(self):
        """Every BDD index the session holds: the GC root set."""
        roots = list(self.good_state)
        for _record, state_diff, acc in self._store.values():
            roots.extend(state_diff.values())
            if acc is not None:
                roots.append(acc)
        return roots

    def live_nodes(self):
        """Shared node count reachable from the session's roots."""
        return self.manager.size(self._roots())

    def reorder_rescue(self, window=2, passes=1):
        """Try to shrink the session by rearranging state-variable pairs.

        Runs :func:`~repro.bdd.reorder.block_window_search` at
        ``(x_i, y_i)`` block granularity — pairs move as units, so the
        MOT ``x -> y`` rename stays monotone.  When a smaller
        arrangement is found the session adopts it wholesale: a fresh
        manager (inheriting the allocation hook, so budget metering and
        pressure checks keep firing), translated roots, and a
        :class:`~repro.bdd.ordering.RemappedStateVariables` view.
        Returns the number of nodes saved (0 when nothing improved or
        the scheme does not support pair-block rescue).

        Invalidates clones, like :meth:`compact`.
        """
        state_vars = self.state_vars
        if state_vars.scheme != "interleaved" or state_vars.num_dffs < 2:
            return 0
        manager = self.manager
        blocks = [
            (state_vars.x(i), state_vars.y(i))
            for i in range(state_vars.num_dffs)
        ]
        # flatten the store position-addressably so the translated
        # roots can be written straight back
        roots = list(self.good_state)
        slots = []
        for entry in self._store.values():
            for dff_idx in entry[1]:
                slots.append((entry, 1, dff_idx))
                roots.append(entry[1][dff_idx])
            if entry[2] is not None:
                slots.append((entry, 2, None))
                roots.append(entry[2])
        before = manager.num_nodes
        found = block_window_search(
            manager, roots, blocks, window=window, passes=passes,
            node_limit=manager.node_limit,
        )
        if found is None:
            return 0
        new_manager, new_roots, var_map = found
        new_manager.alloc_hook = manager.alloc_hook
        # the session-lifetime peak and operation stats survive the
        # manager swap (carrying also re-arms opt-in stat counting)
        new_manager.peak_nodes = max(
            new_manager.peak_nodes, manager.peak_nodes
        )
        new_manager.carry_stats_from(manager)
        self.manager = new_manager
        self.algebra = BddAlgebra(new_manager)
        self.state_vars = RemappedStateVariables(state_vars, var_map)
        count = len(self.good_state)
        self.good_state = list(new_roots[:count])
        for (entry, pos, dff_idx), value in zip(slots, new_roots[count:]):
            if pos == 1:
                entry[1][dff_idx] = value
            else:
                entry[2] = value
        if self.pressure is not None:
            self.pressure.rebind(new_manager)
        return before - new_manager.num_nodes

    # ------------------------------------------------------------------
    def step(self, vector, mark_detected=True):
        """Simulate one time frame; returns the newly detected records.

        Raises :class:`SpaceLimitExceeded` without mutating the session
        when the OBDD node limit is hit.  With ``mark_detected=False``
        the fault records' statuses are left untouched (used by cloned
        trial sessions in the MOT-guided test generator) — detected
        records are still dropped from this session's store.
        """
        if self.pressure is not None:
            # the frame boundary is the one safe point for rebuild-based
            # relief: no traversal in flight, all roots translatable
            self.pressure.frame_relief(self)
        compiled = self.compiled
        algebra = self.algebra
        pi_values = []
        for bit in vector:
            if bit not in (0, 1):
                raise ValueError(
                    "symbolic simulation expects fully specified vectors"
                )
            pi_values.append(algebra.const(bit))

        good_values = simulate_frame(
            compiled, algebra, pi_values, self.good_state
        )
        ctx = FrameContext(
            self.manager, self.state_vars, outputs_of(compiled, good_values)
        )
        observe_silent = self.strategy.needs_y_variables

        observing = self.tracer.enabled or self.metrics is not None
        detected = []
        detect_sizes = []
        new_store = {}
        for key, (record, state_diff, acc) in self._store.items():
            nodes_before = self.manager.num_nodes
            try:
                result = propagate_fault(
                    compiled, algebra, good_values, record.fault, state_diff
                )
                po_diff = {}
                for sig, faulty in result.diff.items():
                    for po_pos in compiled.po_sinks[sig]:
                        po_diff[po_pos] = faulty
                hit = False
                if po_diff or observe_silent:
                    hit, acc = self.strategy.observe(ctx, acc, po_diff)
            except SpaceLimitExceeded as exc:
                # attribute the overflow to this fault so the campaign
                # runtime can demote it instead of dropping the session
                exc.fault_key = record.fault.key()
                raise
            if self.fault_cost_hook is not None:
                self.fault_cost_hook(
                    record, self.manager.num_nodes - nodes_before
                )
            if hit:
                detected.append(record)
                if observing:
                    size = (
                        self.manager.size(acc) if acc is not None else 0
                    )
                    detect_sizes.append(size)
                    if self.metrics is not None:
                        self.metrics.observe("bdd.detect_fn_nodes", size)
            else:
                new_store[key] = [record, result.next_state_diff, acc]

        # Commit only after the whole frame succeeded.
        self.time += 1
        self._store = new_store
        self.good_state = next_state_of(compiled, good_values)
        if mark_detected:
            for position, record in enumerate(detected):
                # X-redundant faults may well be symbolically detectable
                # — that is the whole point of the MOT strategies.
                record.mark_detected(self.strategy.detected_by, self.time)
                if self.tracer.enabled:
                    self.tracer.event(
                        "detect",
                        fault=str(record.fault.key()),
                        rung=self.strategy.name,
                        frame=self.time,
                        by="symbolic",
                        acc_nodes=detect_sizes[position],
                    )
        return detected

    def clone(self):
        """A cheap fork of the session sharing the BDD manager.

        The manager is append-only between garbage collections, so the
        clone and the original stay valid side by side; this is what
        lets the MOT-guided test generator *try* a candidate vector and
        discard the outcome.  Do not call :meth:`compact` while clones
        are alive — collection invalidates their node indices.
        """
        other = SymbolicSession.__new__(SymbolicSession)
        other.compiled = self.compiled
        other.strategy = self.strategy
        other.state_vars = self.state_vars
        other.manager = self.manager
        other.algebra = self.algebra
        other.good_state = list(self.good_state)
        other._store = {
            key: [record, dict(diff), acc]
            for key, (record, diff, acc) in self._store.items()
        }
        other.time = self.time
        other.fault_cost_hook = self.fault_cost_hook
        # pressure relief (GC / rescue) would invalidate the original;
        # clones run unmonitored — and untraced, so trial steps of the
        # test generator never pollute the trace
        other.pressure = None
        other.tracer = NULL_TRACER
        other.metrics = None
        return other

    # ------------------------------------------------------------------
    def _to_3v(self, bdd):
        value = self.manager.const_value(bdd)
        return threeval.X if value is None else value

    def project_state_3v(self):
        """The fault-free state projected down to three-valued logic."""
        return [self._to_3v(b) for b in self.good_state]

    def _diff_relative(self, state_diff, good_3v):
        """Three-valued faulty-state diff of one fault vs *good_3v*.

        The faulty machine differs from this session's good state only
        on the keys of *state_diff*; the reference state may differ
        elsewhere too (e.g. the campaign's shared three-valued
        trajectory is less defined than the symbolic one), so every
        memory element is compared.  Projected faulty values are sound
        individually, which keeps the combined diff conservative.
        """
        diff3 = {}
        for dff_idx, good_bdd in enumerate(self.good_state):
            value = self._to_3v(state_diff.get(dff_idx, good_bdd))
            if value != good_3v[dff_idx]:
                diff3[dff_idx] = value
        return diff3

    def snapshot_3v(self):
        """Project the session state down to three-valued logic.

        Returns ``(good_state_3v, diffs_3v)`` where *diffs_3v* maps
        ``id(record)`` to a three-valued state-difference dict — the
        format :func:`attach_faults` and the three-valued engine accept.
        """
        good_3v = self.project_state_3v()
        return good_3v, self.snapshot_diffs(relative_to=good_3v)

    def snapshot_diffs(self, relative_to=None):
        """Per-fault three-valued state diffs keyed by ``id(record)``.

        *relative_to* is the three-valued good state the diffs are
        expressed against (default: this session's own projection).
        The campaign runtime passes its shared good-machine state here
        when checkpointing.
        """
        if relative_to is None:
            relative_to = self.project_state_3v()
        return {
            key: self._diff_relative(entry[1], relative_to)
            for key, entry in self._store.items()
        }

    def detach(self, record, relative_to=None):
        """Remove *record* from the session without touching its status.

        Returns the fault's three-valued state diff (against
        *relative_to*, defaulting to the session's projected good
        state) so the caller can hand the fault to a three-valued
        engine or another session.
        """
        entry = self._store.pop(id(record))
        if relative_to is None:
            relative_to = self.project_state_3v()
        return self._diff_relative(entry[1], relative_to)

    def compact(self):
        """Garbage-collect the manager, keeping only live session roots.

        Returns the number of nodes freed.
        """
        before = self.manager.num_nodes
        translate = self.manager.collect(self._roots())
        self.good_state = [translate[b] for b in self.good_state]
        for entry in self._store.values():
            entry[1] = {
                dff: translate[b] for dff, b in entry[1].items()
            }
            if entry[2] is not None:
                entry[2] = translate[entry[2]]
        return before - self.manager.num_nodes


class SymbolicFaultSimResult:
    """Outcome of a pure (non-hybrid) symbolic run."""

    def __init__(self, fault_set, strategy_name, frames, exact, peak_nodes):
        self.fault_set = fault_set
        self.strategy = strategy_name
        self.frames_simulated = frames
        self.exact = exact
        self.peak_nodes = peak_nodes

    def __repr__(self):
        counts = self.fault_set.counts()
        flag = "exact" if self.exact else "approximate"
        return (
            f"SymbolicFaultSimResult({self.strategy}, "
            f"{counts['detected']}/{counts['total']} detected, {flag})"
        )


def symbolic_fault_simulate(
    compiled,
    sequence,
    fault_set,
    strategy="MOT",
    initial_state=None,
    node_limit=None,
    variable_scheme="interleaved",
):
    """Pure symbolic fault simulation over the whole sequence.

    Simulates every record of *fault_set* that is still UNDETECTED.
    Raises :class:`SpaceLimitExceeded` when *node_limit* is given and
    hit — use :func:`repro.symbolic.hybrid.hybrid_fault_simulate` for
    the fallback behaviour of the paper.
    """
    if isinstance(fault_set, (list, tuple)):
        fault_set = FaultSet(fault_set)
    session = SymbolicSession(
        compiled,
        strategy,
        good_state_3v=initial_state,
        node_limit=node_limit,
        variable_scheme=variable_scheme,
    )
    session.attach_faults(fault_set.symbolic_candidates())
    for vector in sequence:
        session.step(vector)
    return SymbolicFaultSimResult(
        fault_set,
        session.strategy.name,
        session.time,
        exact=True,
        peak_nodes=session.manager.peak_nodes,
    )
