"""OBDD-based symbolic fault simulation — the paper's core contribution.

* :func:`~repro.symbolic.fault_sim.symbolic_fault_simulate` — pure
  symbolic SOT/rMOT/MOT fault simulation,
* :func:`~repro.symbolic.hybrid.hybrid_fault_simulate` — with the
  three-valued fallback under a node limit (the paper's production
  configuration),
* :mod:`~repro.symbolic.strategies` — the three observation strategies,
* :mod:`~repro.symbolic.detection` — detection functions (Lemma 1),
* :mod:`~repro.symbolic.evaluation` — symbolic test evaluation.
"""

from repro.symbolic.detection import detection_function, is_mot_detectable
from repro.symbolic.strategies import (
    FrameContext,
    MotStrategy,
    RmotStrategy,
    SotStrategy,
    get_strategy,
)
from repro.symbolic.fault_sim import (
    SymbolicFaultSimResult,
    SymbolicSession,
    symbolic_fault_simulate,
)
from repro.symbolic.hybrid import (
    DEFAULT_FALLBACK_FRAMES,
    DEFAULT_NODE_LIMIT,
    HybridFaultSimResult,
    hybrid_fault_simulate,
)
from repro.symbolic.evaluation import (
    SymbolicOutputSequence,
    generate_response,
    symbolic_output_sequence,
)

__all__ = [
    "detection_function",
    "is_mot_detectable",
    "get_strategy",
    "SotStrategy",
    "RmotStrategy",
    "MotStrategy",
    "FrameContext",
    "SymbolicSession",
    "SymbolicFaultSimResult",
    "symbolic_fault_simulate",
    "hybrid_fault_simulate",
    "HybridFaultSimResult",
    "DEFAULT_NODE_LIMIT",
    "DEFAULT_FALLBACK_FRAMES",
    "SymbolicOutputSequence",
    "symbolic_output_sequence",
    "generate_response",
]
