"""The hybrid fault simulator (Sections I and IV.A).

Runs the symbolic simulation of :mod:`repro.symbolic.fault_sim` until
the OBDD node limit is exceeded, then

1. tries a garbage collection of the session first (cheap, and often
   enough early in a stretch),
2. otherwise *falls back*: the symbolic state is projected onto the
   three-valued logic, a few frames are simulated three-valued with SOT
   detection (which shrinks the symbolic state: known bits become
   constants), and a fresh symbolic session is opened — X-valued state
   bits get fresh variables and every detection function restarts at
   the constant 1, exactly as the paper prescribes.

Any fallback makes the final classification conservative: faults still
undetected might have been caught by an uninterrupted symbolic run.
Results produced this way are flagged ``exact=False`` (the asterisks in
Tables II and III).
"""

from repro.bdd.errors import SpaceLimitExceeded
from repro.engines.algebra import THREE_VALUED
from repro.engines.evaluate import next_state_of, simulate_frame
from repro.engines.propagate import propagate_fault
from repro.engines.serial_fault_sim import _check_sot_detection
from repro.faults.status import BY_3V, UNDETECTED, FaultSet
from repro.logic import threeval
from repro.symbolic.fault_sim import SymbolicSession

DEFAULT_NODE_LIMIT = 30_000  # the paper's space limit
DEFAULT_FALLBACK_FRAMES = 5

# After a GC the step is retried only if the table is comfortably below
# the limit again; otherwise we would thrash between GC and overflow.
_GC_RETRY_FRACTION = 0.5


class HybridFaultSimResult:
    """Outcome of a hybrid run."""

    def __init__(
        self,
        fault_set,
        strategy_name,
        frames_total,
        frames_symbolic,
        frames_three_valued,
        fallbacks,
        gc_runs,
        peak_nodes,
    ):
        self.fault_set = fault_set
        self.strategy = strategy_name
        self.frames_total = frames_total
        self.frames_symbolic = frames_symbolic
        self.frames_three_valued = frames_three_valued
        self.fallbacks = fallbacks
        self.gc_runs = gc_runs
        self.peak_nodes = peak_nodes

    @property
    def exact(self):
        """True when no three-valued fallback polluted the verdicts."""
        return self.fallbacks == 0

    def __repr__(self):
        counts = self.fault_set.counts()
        flag = "exact" if self.exact else f"*{self.fallbacks} fallbacks"
        return (
            f"HybridFaultSimResult({self.strategy}, "
            f"{counts['detected']}/{counts['total']} detected, {flag})"
        )


def _three_valued_frame(compiled, vector, good_state, live, diffs, time):
    """One three-valued frame over the live faults; returns new state."""
    algebra = THREE_VALUED
    good_values = simulate_frame(compiled, algebra, vector, good_state)
    for record in list(live):
        result = propagate_fault(
            compiled, algebra, good_values, record.fault, diffs[id(record)]
        )
        if _check_sot_detection(compiled, good_values, result, algebra):
            record.mark_detected(BY_3V, time)
            live.remove(record)
            del diffs[id(record)]
        else:
            diffs[id(record)] = result.next_state_diff
    return next_state_of(compiled, good_values)


def hybrid_fault_simulate(
    compiled,
    sequence,
    fault_set,
    strategy="MOT",
    node_limit=DEFAULT_NODE_LIMIT,
    fallback_frames=DEFAULT_FALLBACK_FRAMES,
    initial_state=None,
    variable_scheme="interleaved",
    try_gc_first=True,
):
    """Hybrid symbolic / three-valued fault simulation.

    Mirrors :func:`repro.symbolic.fault_sim.symbolic_fault_simulate`
    but never dies on the node limit; see the module docstring for the
    fallback protocol.
    """
    if fallback_frames < 1:
        raise ValueError("fallback_frames must be at least 1")
    if isinstance(fault_set, (list, tuple)):
        fault_set = FaultSet(fault_set)
    vectors = list(sequence)

    if initial_state is None:
        initial_state = [threeval.X] * compiled.num_dffs

    session = SymbolicSession(
        compiled,
        strategy,
        good_state_3v=initial_state,
        node_limit=node_limit,
        variable_scheme=variable_scheme,
    )
    session.attach_faults(fault_set.symbolic_candidates())
    strategy_name = session.strategy.name

    time = 0
    frames_symbolic = 0
    frames_three_valued = 0
    fallbacks = 0
    gc_runs = 0
    peak_nodes = 2

    while time < len(vectors):
        try:
            session.step(vectors[time])
            time += 1
            frames_symbolic += 1
            continue
        except SpaceLimitExceeded:
            pass

        peak_nodes = max(peak_nodes, session.manager.peak_nodes)
        if try_gc_first:
            session.compact()
            gc_runs += 1
            if session.manager.num_nodes < _GC_RETRY_FRACTION * node_limit:
                try:
                    session.step(vectors[time])
                    time += 1
                    frames_symbolic += 1
                    continue
                except SpaceLimitExceeded:
                    pass

        # ------------------------------------------------------ fallback
        fallbacks += 1
        good_3v, diffs_3v = session.snapshot_3v()
        live = session.live_records()
        diffs = {id(r): diffs_3v[id(r)] for r in live}
        for _ in range(fallback_frames):
            if time >= len(vectors):
                break
            good_3v = _three_valued_frame(
                compiled, vectors[time], good_3v, live, diffs, time + 1
            )
            time += 1
            frames_three_valued += 1

        session = SymbolicSession(
            compiled,
            strategy,
            good_state_3v=good_3v,
            node_limit=node_limit,
            variable_scheme=variable_scheme,
        )
        session.attach_faults(live, diffs)

    peak_nodes = max(peak_nodes, session.manager.peak_nodes)
    return HybridFaultSimResult(
        fault_set,
        strategy_name,
        frames_total=time,
        frames_symbolic=frames_symbolic,
        frames_three_valued=frames_three_valued,
        fallbacks=fallbacks,
        gc_runs=gc_runs,
        peak_nodes=peak_nodes,
    )
