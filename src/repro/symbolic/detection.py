"""Detection functions (Section IV, Lemma 1).

For a fault f and a test sequence Z of length n, the detection function

    D_{f,Z}(x, y) = prod_{t=1..n} prod_{j=1..l} [ o_j(x,t) == o_j^f(y,t) ]

is 0 exactly when the fault is detectable under the multiple observation
time strategy: no pair of initial states (p for the fault-free machine,
q for the faulty machine) produces identical output sequences.

The fault simulator accumulates these products incrementally; this
module provides the standalone computation from complete symbolic
output sequences, which is what the worked example of Fig. 3 and the
oracle tests use.
"""

from repro.bdd.manager import FALSE, TRUE


def detection_function(manager, good_outputs, faulty_outputs, rename_map=None):
    """Build D_{f,Z} from two symbolic output sequences.

    *good_outputs* and *faulty_outputs* are per-frame lists of per-PO
    BDDs over the fault-free state variables ``x``.  When *rename_map*
    is given (the MOT case), the faulty outputs are renamed through it
    (``x -> y``) before the equivalence terms are built; without it the
    machines share their initial-state variables (the rMOT/SOT view).
    """
    if len(good_outputs) != len(faulty_outputs):
        raise ValueError("output sequences have different lengths")
    product = TRUE
    for good_frame, faulty_frame in zip(good_outputs, faulty_outputs):
        if len(good_frame) != len(faulty_frame):
            raise ValueError("frames have different output widths")
        for good, faulty in zip(good_frame, faulty_frame):
            if rename_map:
                faulty = manager.rename(faulty, rename_map)
            product = manager.and_(product, manager.xnor(good, faulty))
            if product == FALSE:
                return FALSE
    return product


def is_mot_detectable(manager, good_outputs, faulty_outputs, rename_map):
    """Lemma 1: detectable iff the detection function is identically 0."""
    return (
        detection_function(manager, good_outputs, faulty_outputs, rename_map)
        == FALSE
    )
