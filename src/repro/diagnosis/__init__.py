"""Symbolic fault diagnosis (candidate identification from a response)."""

from repro.diagnosis.engine import Candidate, DiagnosisResult, diagnose

__all__ = ["Candidate", "DiagnosisResult", "diagnose"]
