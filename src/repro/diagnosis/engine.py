"""Symbolic fault diagnosis — the converse of test evaluation.

Section IV.B decides *whether* a circuit-under-test is faulty; a
natural and classical follow-up (fault dictionaries) asks *which*
stuck-at fault explains the observed response.  With the symbolic
machinery this needs no dictionary: a fault f is a **candidate** for
the observed response ``c`` iff some initial state q of the faulty
machine reproduces it,

    exists q:  for all t, j:  o_j^f(q, t) == c_j(t)
    <=>  prod_t prod_j [ o_j^f(x, t) == c_j(t) ]  is not identically 0,

which is exactly the detection-function computation with the fault-free
outputs replaced by the observed constants.  Faults whose product
collapses to 0 are **exonerated**.  The engine reuses the event-driven
single-fault propagation, so exoneration drops a fault mid-run just
like detection does in the fault simulator.
"""

from repro.bdd import BddManager, StateVariables
from repro.bdd.manager import FALSE, TRUE
from repro.engines.algebra import BddAlgebra
from repro.engines.evaluate import next_state_of, outputs_of, simulate_frame
from repro.engines.propagate import propagate_fault
from repro.logic import threeval


class Candidate:
    """One fault that can explain the observed response."""

    __slots__ = ("fault", "num_states", "witness")

    def __init__(self, fault, num_states, witness):
        self.fault = fault
        self.num_states = num_states  # how many initial states explain c
        self.witness = witness  # one explaining initial state (tuple)

    def __repr__(self):
        return f"Candidate({self.fault!r}, {self.num_states} states)"


class DiagnosisResult:
    """Outcome of :func:`diagnose`."""

    def __init__(self, candidates, exonerated, fault_free_consistent):
        self.candidates = candidates  # sorted, most states first
        self.exonerated = exonerated  # list of faults ruled out
        self.fault_free_consistent = fault_free_consistent

    @property
    def is_faulty(self):
        """True when no fault-free initial state explains the response."""
        return not self.fault_free_consistent

    def candidate_faults(self):
        return [c.fault for c in self.candidates]

    def __repr__(self):
        return (
            f"DiagnosisResult({len(self.candidates)} candidates, "
            f"{len(self.exonerated)} exonerated, fault-free "
            f"{'possible' if self.fault_free_consistent else 'excluded'})"
        )


def diagnose(
    compiled,
    sequence,
    response,
    faults,
    initial_state=None,
    node_limit=None,
):
    """Diagnose *response* against the single-stuck-at universe *faults*.

    Returns a :class:`DiagnosisResult`.  *response* is a list of
    per-frame primary-output bit vectors (as produced on the tester).
    """
    vectors = list(sequence)
    if len(response) != len(vectors):
        raise ValueError(
            f"response has {len(response)} frames, sequence has "
            f"{len(vectors)}"
        )

    state_vars = StateVariables(compiled.num_dffs)
    manager = BddManager(num_vars=compiled.num_dffs,
                         node_limit=node_limit)
    algebra = BddAlgebra(manager)

    if initial_state is None:
        initial_state = [threeval.X] * compiled.num_dffs
    good_state = [
        manager.mk_var(state_vars.x(i))
        if value == threeval.X
        else manager.const(value)
        for i, value in enumerate(initial_state)
    ]

    # live fault bookkeeping: fault -> [state_diff, accumulator]
    live = {fault.key(): [fault, {}, TRUE] for fault in faults}
    good_acc = TRUE  # the "no fault" hypothesis
    exonerated = []

    for time, (vector, observed) in enumerate(
        zip(vectors, response), start=1
    ):
        pi_values = [algebra.const(b) for b in vector]
        good_values = simulate_frame(
            compiled, algebra, pi_values, good_state
        )
        good_po = outputs_of(compiled, good_values)
        # constants per observed bit, and the good-machine product
        good_terms = []
        for po_pos, bit in enumerate(observed):
            term = good_po[po_pos] if bit else manager.not_(
                good_po[po_pos]
            )
            good_terms.append(term)
            if good_acc != FALSE:
                good_acc = manager.and_(good_acc, term)

        for key in list(live):
            fault, state_diff, acc = live[key]
            result = propagate_fault(
                compiled, algebra, good_values, fault, state_diff
            )
            for po_pos, bit in enumerate(observed):
                sig = compiled.pos[po_pos]
                faulty = result.diff.get(sig)
                if faulty is None:
                    term = good_terms[po_pos]
                else:
                    term = faulty if bit else manager.not_(faulty)
                acc = manager.and_(acc, term)
                if acc == FALSE:
                    break
            if acc == FALSE:
                exonerated.append(fault)
                del live[key]
            else:
                live[key] = [fault, result.next_state_diff, acc]
        good_state = next_state_of(compiled, good_values)

    x_vars = [
        state_vars.x(i)
        for i in range(compiled.num_dffs)
        if initial_state[i] == threeval.X
    ]
    candidates = []
    for fault, _diff, acc in live.values():
        count = manager.sat_count(acc, x_vars) if x_vars else 1
        assignment = manager.pick_assignment(acc, variables=x_vars)
        if assignment is None:
            witness = None
        else:
            witness = tuple(
                initial_state[i]
                if initial_state[i] != threeval.X
                else assignment.get(state_vars.x(i), 0)
                for i in range(compiled.num_dffs)
            )
        candidates.append(Candidate(fault, count, witness))
    candidates.sort(key=lambda c: -c.num_states)

    return DiagnosisResult(
        candidates, exonerated, fault_free_consistent=good_acc != FALSE
    )
