"""Bounded-disk operation: probing, quotas, watermarks, compaction.

The governor already budgets time, nodes and RSS; this module is the
fourth leg — disk.  Campaign checkpoints append one record per
checkpoint interval forever, the service journal grows across every
restart, and traces accumulate until the filesystem fills, at which
point the ENOSPC handling can only surrender.  Bounded-disk operation
turns that cliff into a ladder:

* :func:`read_free_bytes` probes free space via ``os.statvfs`` (the
  ``disk.statvfs`` failpoint makes it lie, for chaos drills),
* :func:`artifact_usage_bytes` meters the files a run owns,
* :class:`DiskSampler` throttles both behind a call counter, exactly
  like :class:`~repro.runtime.memory.RssSampler` throttles ``/proc``
  reads,
* :class:`DiskGovernor` folds usage and free space against a quota
  (``--disk-budget``) and a free-space floor into three levels —
  ``ok`` / ``soft`` / ``hard`` — and keeps the accounting,
* :func:`compact_checkpoint` rewrites a campaign or fabric checkpoint
  keeping only the records a resume actually reads, atomically and
  byte-reproducibly (records round-trip through the same
  CRC-splicing serializer that wrote them).

The relief ladder itself lives in the consumers: the campaign
compacts its checkpoint, then stretches the checkpoint interval, and
only surrenders (:class:`~repro.runtime.errors.DiskPressureExceeded`,
routed like every other budget stop — final checkpoint, partial
result, never a crash) when the hard watermark holds after relief.
The service sheds new admissions with 507 and ages out terminal-job
artifacts under its quota.

Exactness: every relief rung is semantics-preserving.  Compaction
keeps the exact records a resume reads (the header and the latest
snapshot), a stretched checkpoint interval only changes how much work
a crash can lose, and a surrender stops early but never misclassifies
— the verdicts of a disk-pressured run are byte-identical to an
unconstrained run, or the run stops cleanly with a resumable
checkpoint.
"""

import os
import tempfile

from repro import failpoints as _failpoints
from repro.runtime.checkpoint import (
    JsonlWriter,
    fsync_best_effort,
    read_jsonl_records,
)
from repro.runtime.errors import CheckpointError, DiskPressureExceeded

#: watermark levels, in escalating order
LEVEL_OK = "ok"
LEVEL_SOFT = "soft"
LEVEL_HARD = "hard"


def read_free_bytes(path):
    """Free bytes available to unprivileged writers on *path*'s fs.

    ``f_bavail * f_frsize`` — the space a write can actually use, not
    the root-reserved total.  Returns None when the path cannot be
    statted (or the platform has no ``statvfs``), in which case
    free-space watermarks degrade to inert, like an unreadable
    ``/proc`` degrades the RSS budget.

    The ``disk.statvfs`` failpoint makes the probe lie that the disk
    is full — the chaos drills use it to prove the ladder reacts to a
    hostile kernel answer with a clean surrender, not a crash.
    """
    if _failpoints.fire("disk.statvfs"):
        return 0
    try:
        stats = os.statvfs(path)
    except (OSError, AttributeError, ValueError):
        return None
    return stats.f_bavail * stats.f_frsize


def artifact_usage_bytes(paths):
    """Total on-disk bytes of *paths* (files, or directories walked).

    Races with concurrent deletion are absorbed per entry — a file
    that vanishes mid-walk simply stops counting, which is the answer
    the quota wants anyway.
    """
    total = 0
    for path in paths:
        if path is None:
            continue
        path = str(path)
        if os.path.isdir(path):
            for root, _dirs, files in os.walk(path):
                for name in files:
                    try:
                        total += os.path.getsize(os.path.join(root, name))
                    except OSError:
                        pass
        else:
            try:
                total += os.path.getsize(path)
            except OSError:
                pass
    return total


class _Unavailable:
    pass


_UNAVAILABLE = _Unavailable()


class DiskSampler:
    """Throttled usage/free-space sampler for frame-boundary checks.

    Statting the governed artifacts and the filesystem every frame is
    cheap but not free; the sampler re-measures only every *refresh*
    calls and serves the cached pair in between, mirroring
    :class:`~repro.runtime.memory.RssSampler`.  It remembers the peak
    usage and the lowest free space it has seen for accounting.  A
    free-space probe that returns None on first use marks free-space
    sampling unavailable for good (usage metering keeps working).
    """

    def __init__(self, paths=(), refresh=8, read_free=read_free_bytes,
                 read_usage=artifact_usage_bytes):
        if refresh < 1:
            raise ValueError("refresh must be >= 1")
        self.paths = [str(p) for p in paths]
        self.refresh = refresh
        self._read_free = read_free
        self._read_usage = read_usage
        self._calls = 0
        self._usage = None
        self._free = None
        self.peak_usage = 0
        self.low_free = None
        self.samples = 0

    def _probe_root(self):
        """The directory whose filesystem free space is metered."""
        for path in self.paths:
            directory = path if os.path.isdir(path) \
                else os.path.dirname(os.path.abspath(path))
            return directory or "."
        return "."

    def __call__(self):
        """Return ``(usage_bytes, free_bytes_or_None)``, throttled."""
        if self._usage is None or self._calls >= self.refresh:
            self._calls = 0
            self.samples += 1
            usage = self._read_usage(self.paths)
            self._usage = usage
            if usage > self.peak_usage:
                self.peak_usage = usage
            if self._free is not _UNAVAILABLE:
                free = self._read_free(self._probe_root())
                if free is None and self._free is None:
                    self._free = _UNAVAILABLE
                elif free is not None:
                    self._free = free
                    if self.low_free is None or free < self.low_free:
                        self.low_free = free
        self._calls += 1
        free = None if self._free is _UNAVAILABLE else self._free
        return self._usage, free


class DiskConfig:
    """Watermark configuration for a :class:`DiskGovernor`.

    *budget* caps the combined size of the governed artifacts (the
    ``--disk-budget`` flag); *free_floor* is the minimum free space
    the filesystem must keep (hard watermark — the soft watermark sits
    at ``free_floor / soft``).  *soft* is the fraction of the budget
    at which relief starts (default 0.8: compaction and interval
    stretching begin at 80% of quota, surrender at 100%).  Either
    limit may be None (unlimited); with both None the governor is
    inert.
    """

    def __init__(self, budget=None, free_floor=None, soft=0.8, refresh=8):
        if budget is not None and budget <= 0:
            raise ValueError("disk budget must be positive")
        if free_floor is not None and free_floor < 0:
            raise ValueError("free floor must be >= 0")
        if not 0.0 < soft <= 1.0:
            raise ValueError("soft watermark fraction must be in (0, 1]")
        self.budget = budget
        self.free_floor = free_floor
        self.soft = soft
        self.refresh = refresh

    @property
    def enabled(self):
        return self.budget is not None or self.free_floor is not None

    def to_json(self):
        return {
            "budget": self.budget,
            "free_floor": self.free_floor,
            "soft": self.soft,
        }


class DiskGovernor:
    """Watermark bookkeeping over a set of governed artifact paths.

    The governor measures (throttled), classifies the measurement
    into ``ok`` / ``soft`` / ``hard``, and keeps the accounting the
    trace and the campaign counters surface.  It deliberately does
    *not* run the relief ladder itself — compaction needs the
    checkpoint writer, shedding needs the HTTP edge — so consumers
    call :meth:`check`, act on the level, report what they did via
    :meth:`note_compaction` / :meth:`note_stretch`, and call
    :meth:`hard_stop` when relief failed to bring the hard watermark
    back down.
    """

    def __init__(self, config, paths=()):
        self.config = config or DiskConfig()
        self.sampler = DiskSampler(paths, refresh=self.config.refresh)
        self.soft_events = 0
        self.hard_events = 0
        self.compactions = 0
        self.reclaimed_bytes = 0
        self.stretches = 0
        self.last_usage = 0
        self.last_free = None

    @property
    def enabled(self):
        return self.config.enabled

    def add_path(self, path):
        if path is not None and str(path) not in self.sampler.paths:
            self.sampler.paths.append(str(path))

    def measure(self, force=False):
        """Sample (throttled unless *force*); returns (usage, free)."""
        if force:
            self.sampler._usage = None
        usage, free = self.sampler()
        self.last_usage = usage
        self.last_free = free
        return usage, free

    def level_of(self, usage, free):
        """Classify a measurement against the watermarks."""
        config = self.config
        level = LEVEL_OK
        if config.budget is not None:
            if usage >= config.budget:
                return LEVEL_HARD
            if usage >= config.budget * config.soft:
                level = LEVEL_SOFT
        if config.free_floor is not None and free is not None:
            if free <= config.free_floor:
                return LEVEL_HARD
            if free <= config.free_floor / config.soft:
                level = LEVEL_SOFT
        return level

    def check(self, force=False):
        """Measure and classify; counts soft/hard crossings."""
        if not self.enabled:
            return LEVEL_OK
        usage, free = self.measure(force=force)
        level = self.level_of(usage, free)
        if level == LEVEL_SOFT:
            self.soft_events += 1
        elif level == LEVEL_HARD:
            self.hard_events += 1
        return level

    def note_compaction(self, bytes_before, bytes_after):
        self.compactions += 1
        self.reclaimed_bytes += max(0, bytes_before - bytes_after)

    def note_stretch(self):
        self.stretches += 1

    def hard_stop(self, frame=None):
        """Raise the typed surrender for the current measurement."""
        config = self.config
        usage, free = self.last_usage, self.last_free
        if config.free_floor is not None and free is not None \
                and free <= config.free_floor:
            limit, observed = config.free_floor, free
        else:
            limit, observed = config.budget, usage
        raise DiskPressureExceeded(
            limit, observed,
            path=self.sampler.paths[0] if self.sampler.paths else None,
            frame=frame,
        )

    def accounting(self):
        """Counter snapshot for checkpoints, traces and results."""
        return {
            "disk_usage": self.last_usage,
            "disk_peak_usage": self.sampler.peak_usage,
            "disk_free": self.last_free,
            "disk_low_free": self.sampler.low_free,
            "disk_soft_events": self.soft_events,
            "disk_hard_events": self.hard_events,
            "disk_compactions": self.compactions,
            "disk_reclaimed_bytes": self.reclaimed_bytes,
            "disk_stretches": self.stretches,
        }


# ---------------------------------------------------------------------------
# checkpoint compaction


def rewrite_jsonl_atomic(path, records, site_prefix="checkpoint"):
    """Atomically replace *path* with *records*, re-CRC'd per line.

    The compaction primitive: serialize every record through the same
    :class:`~repro.runtime.checkpoint.JsonlWriter` discipline that
    wrote it (version splice, canonical ``sort_keys`` dump, CRC32
    splice — so surviving records are byte-identical to their
    originals), into a temporary file in the same directory, then
    ``os.replace`` over the target and fsync the directory.  Readers
    see either the complete old file or the complete new one.

    On any failure — including the ``disk.compact.crash`` failpoint,
    which injects a crash between the finished temp file and the
    rename — the temp file is removed and the original is untouched,
    so a failed compaction costs nothing but the retry.
    """
    path = str(path)
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    os.close(fd)
    writer = None
    try:
        writer = JsonlWriter(tmp_path, site_prefix=site_prefix)
        for record in records:
            # _write mutates (version splice); never touch the caller's copy
            writer._write(dict(record))
        writer.close()
        writer = None
        if _failpoints.fire("disk.compact.crash"):
            raise CheckpointError(
                path, "failpoint disk.compact.crash fired before rename"
            )
        os.replace(tmp_path, path)
    except BaseException:
        if writer is not None:
            writer.close()
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic platforms
        return
    try:
        fsync_best_effort(dir_fd, directory)
    finally:
        os.close(dir_fd)


def _compact_campaign_records(records):
    """Survivors of a campaign checkpoint: header + latest snapshot.

    Resume reads the header and the *last* ``checkpoint`` record;
    everything else is history.  The last ``progress`` record is kept
    too (``repro top`` resurfaces it), as is anything unrecognized —
    compaction must never destroy what it does not understand.
    """
    keep = set()
    last = {}
    for index, record in enumerate(records):
        kind = record.get("type")
        if kind in ("checkpoint", "progress"):
            last[kind] = index
        else:
            keep.add(index)
    keep.update(last.values())
    return [records[i] for i in sorted(keep)]


def _compact_fabric_records(records):
    """Survivors of a fabric checkpoint: header + latest per shard.

    The loader folds shard records last-write-wins keyed by shard id,
    so only each shard's final record matters.  Order of survivors is
    the order of those final occurrences, preserving append
    semantics.
    """
    keep = set()
    last_shard = {}
    for index, record in enumerate(records):
        if record.get("type") == "shard":
            last_shard[tuple(record.get("id") or ())] = index
        else:
            keep.add(index)
    keep.update(last_shard.values())
    return [records[i] for i in sorted(keep)]


def compact_checkpoint(path):
    """Compact a campaign or fabric checkpoint file in place.

    Keeps exactly the records a resume reads (see the per-flavor
    helpers), rewrites atomically, and returns the accounting::

        {"kind", "records_before", "records_after",
         "bytes_before", "bytes_after"}

    Corruption refuses the compaction (``CheckpointError``) — a
    damaged file is ``repro fsck --repair``'s job, and compacting
    around quarantined records could silently launder them away.  A
    torn tail is fine (readers skip it; compaction drops it, which a
    reopening writer would have done anyway).
    """
    path = str(path)
    records = list(read_jsonl_records(path))
    if not records:
        raise CheckpointError(path, "no records")
    first = records[0].get("type")
    if first in ("header", "checkpoint", "progress"):
        survivors = _compact_campaign_records(records)
        site_prefix = "checkpoint"
        kind = "campaign"
    elif first in ("fabric-header", "shard"):
        survivors = _compact_fabric_records(records)
        site_prefix = "fabric.checkpoint"
        kind = "fabric"
    else:
        raise CheckpointError(
            path, f"cannot compact artifact with first record type {first!r}"
        )
    try:
        bytes_before = os.path.getsize(path)
    except OSError:  # pragma: no cover - raced deletion
        bytes_before = 0
    rewrite_jsonl_atomic(path, survivors, site_prefix=site_prefix)
    try:
        bytes_after = os.path.getsize(path)
    except OSError:  # pragma: no cover - raced deletion
        bytes_after = bytes_before
    return {
        "kind": kind,
        "records_before": len(records),
        "records_after": len(survivors),
        "bytes_before": bytes_before,
        "bytes_after": bytes_after,
    }
