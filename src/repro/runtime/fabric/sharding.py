"""Shard planning and poison-shard bisection.

A *shard* is a slice of the campaign's live fault universe, identified
by the indices of its faults in the canonical fault order (the order of
the master :class:`~repro.faults.status.FaultSet`).  Fault simulation
is per-fault independent, so running a campaign per shard and merging
the per-fault verdicts is exact — sharding never changes a result,
only who computes it.

Shard ids are tuples of ints: a planned shard is ``(3,)``, the halves
a poison shard is bisected into are ``(3, 0)`` and ``(3, 1)``, and so
on down to singletons.  Tuples sort in bisection-tree order, which is
what makes the fabric's merge deterministic regardless of completion
order.
"""


def shard_id_text(shard_id):
    """Render a shard id tuple, e.g. ``(3, 1)`` -> ``"3.1"``."""
    return ".".join(str(part) for part in shard_id)


class Shard:
    """One unit of work: fault indices plus retry/bisection bookkeeping."""

    __slots__ = ("shard_id", "indices", "crashes", "not_before")

    def __init__(self, shard_id, indices):
        self.shard_id = tuple(shard_id)
        self.indices = list(indices)
        self.crashes = 0  # worker deaths while running this shard
        self.not_before = 0.0  # backoff gate (monotonic clock)

    def __len__(self):
        return len(self.indices)

    def split(self):
        """Bisect into two child shards with fresh crash counters.

        The caller guarantees ``len(self) > 1``; the halves partition
        the indices in order, so the bisection tree eventually isolates
        a poison fault in a singleton shard.
        """
        mid = len(self.indices) // 2
        return (
            Shard(self.shard_id + (0,), self.indices[:mid]),
            Shard(self.shard_id + (1,), self.indices[mid:]),
        )

    def __repr__(self):
        return (
            f"Shard({shard_id_text(self.shard_id)}, "
            f"{len(self.indices)} faults, {self.crashes} crashes)"
        )


def aligned_shard_size(live_count, workers, shard_size=None, align=None):
    """Pick (or validate) a shard size.

    With no explicit *shard_size* the planner aims for a few shards per
    worker, so a straggler does not serialize the tail of the sweep.
    When *align* is given (the word-parallel engine's ``pack_width``)
    and the size exceeds it, the size is rounded down to a multiple, so
    shards do not fragment packs.
    """
    if shard_size is None:
        per_worker_shards = 4
        shard_size = -(-live_count // max(workers * per_worker_shards, 1))
    shard_size = max(int(shard_size), 1)
    if align and shard_size > align:
        shard_size -= shard_size % align
    return shard_size


def plan_shards(indices, shard_size):
    """Slice *indices* into :class:`Shard`\\ s of at most *shard_size*."""
    return [
        Shard((ordinal,), indices[start : start + shard_size])
        for ordinal, start in enumerate(range(0, len(indices), shard_size))
    ]
