"""The shard-fabric coordinator: a fault-tolerant worker pool.

:class:`ShardFabric` splits a campaign's live fault universe into
shards (:mod:`.sharding`), runs them on a pool of worker processes
(:mod:`.worker`) and merges the per-fault verdicts back into the master
:class:`~repro.faults.status.FaultSet` deterministically (sorted by
shard id, never by completion order).  Sharding is exact: fault
simulation is per-fault independent, so the merged verdicts of an
undegraded run are identical to a single-process run.

Failure handling, from mildest to worst:

* **slow shard** — per-shard wall-clock timeout (``shard_timeout``);
  the worker is SIGKILLed and the shard handled as a crash,
* **hung worker** — heartbeat liveness: an explicit
  ``heartbeat_timeout`` if configured, else the default hang watchdog
  (``hang_grace`` missed intervals) distinguishes a stalled-but-alive
  process (counted in ``hangs``) from a dead one; same remedy,
* **crashed worker** (segfault-class death, OOM kill, chaos
  injection) — the shard is retried with exponential backoff plus
  jitter and a fresh worker is spawned into the vacant slot,
* **poison shard** — a shard that has killed its worker
  ``max_retries`` times is *bisected*; the halves retry independently,
  so the bisection tree isolates the offending fault in a singleton
  shard, which is then routed into the campaign's existing quarantine
  (status ``quarantined``) instead of looping forever,
* **dead pool** — if every freshly spawned worker dies before its
  first message, :class:`~repro.runtime.errors.WorkerCrashed` is
  raised rather than spinning.

The governor's budgets are apportioned: each dispatch hands the worker
the *remaining* wall-clock deadline and an equal share of the node
budget.  Completed shards are absorbed into a crash-safe checkpoint
the moment they land, so a killed coordinator resumes with partial
progress (:func:`resume_sharded_campaign`).  ``SIGINT`` and ``SIGTERM``
(both via :class:`~repro.runtime.checkpoint.SignalGuard`) drain the
pool identically and gracefully: no new dispatches, in-flight shards
finish, a partial result is returned with ``stopped == "signal"``.
Workers ignore both signals themselves, so a signal delivered to the
whole process group (Ctrl-C in a terminal, ``systemctl stop``, a
container runtime's ``SIGTERM``) still drains cleanly instead of
killing workers mid-shard.
"""

import multiprocessing
import random
import time as _time
from multiprocessing.connection import wait as _connection_wait

from repro import failpoints as _failpoints
from repro.faults.status import (
    UNDETECTED,
    X_REDUNDANT,
    FaultSet,
    fault_key_from_json,
)
from repro.runtime.checkpoint import circuit_fingerprint, verify_fingerprint
from repro.runtime.errors import CheckpointError, WorkerCrashed
from repro.runtime.fabric.checkpoint import (
    FabricCheckpointWriter,
    load_fabric_checkpoint,
)
from repro.runtime.fabric.frames import FrameProtocolError, FrameReader
from repro.runtime.fabric.sharding import (
    aligned_shard_size,
    plan_shards,
    shard_id_text,
)
from repro.runtime.fabric.worker import WorkerPipes, run_shard, worker_main
from repro.runtime.governor import ResourceGovernor
from repro.runtime.ladder import DegradationLadder

COMPLETED = "completed"

#: how long the event loop sleeps at most between bookkeeping passes
_POLL_INTERVAL = 0.25

#: the hang watchdog's grace window is ``hang_grace`` heartbeat
#: intervals, but never less than this: ``heartbeat_interval=0.0``
#: ("beat as fast as you can") must not collapse the window to zero
#: and declare every busy worker hung on the first bookkeeping pass
_HANG_WINDOW_FLOOR = 1.0


def _merge_pressure(merged, shard_pressure):
    """Fold one shard's pressure accounting into the running total.

    Relief counters are summed (work accounting, like ``gc_runs``),
    ``peak_rss`` is the max over shards; per-event logs stay per-shard
    and are dropped from the merged view.
    """
    if shard_pressure is None:
        return merged
    if merged is None:
        merged = {
            "events": 0,
            "cache_evictions": 0,
            "gc_runs": 0,
            "reorder_rescues": 0,
            "rss_surrenders": 0,
            "peak_rss": 0,
        }
    for key in ("events", "cache_evictions", "gc_runs",
                "reorder_rescues", "rss_surrenders"):
        merged[key] += shard_pressure.get(key, 0)
    merged["peak_rss"] = max(
        merged["peak_rss"], shard_pressure.get("peak_rss") or 0
    )
    return merged


class FabricConfig:
    """Tuning knobs of the shard fabric (all with safe defaults)."""

    def __init__(
        self,
        workers=2,
        shard_size=None,
        pack_width=256,
        shard_timeout=None,
        heartbeat_timeout=None,
        heartbeat_interval=0.05,
        hang_grace=200,
        max_retries=2,
        backoff_base=0.05,
        backoff_cap=2.0,
        backoff_jitter=0.5,
        start_method=None,
        seed=0,
        events=None,
        chaos=None,
        worker_rss_cap=None,
    ):
        if workers < 0:
            raise ValueError("workers must be >= 0 (0 = inline)")
        if max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        self.workers = workers
        self.shard_size = shard_size
        self.pack_width = pack_width
        self.shard_timeout = shard_timeout
        self.heartbeat_timeout = heartbeat_timeout
        self.heartbeat_interval = heartbeat_interval
        #: the hang watchdog, ON by default: a busy worker silent for
        #: ``hang_grace`` heartbeat intervals is presumed wedged —
        #: alive but making no progress (stuck syscall, half-written
        #: pipe frame, runaway C loop) — and is SIGKILLed, its shard
        #: retried under the normal backoff/bisection machinery.
        #: Workers beat at frame boundaries *and* at BDD-allocation
        #: granularity, so a legitimately expensive frame keeps
        #: beating.  The grace window (``hang_grace *
        #: heartbeat_interval``) never shrinks below one second, so a
        #: tiny or zero beat interval cannot turn the watchdog into a
        #: hair trigger.  An explicit ``heartbeat_timeout`` takes
        #: precedence; ``None`` disables the watchdog.
        self.hang_grace = hang_grace
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.backoff_jitter = backoff_jitter
        self.start_method = start_method
        #: the fabric's ONLY random stream: retry-backoff jitter.  It
        #: never influences shard planning, merge order or any verdict
        #: — simulation results are deterministic regardless of this
        #: value.  Every draw that *can* affect an outcome (the audit's
        #: sampling and constant-witness states, see
        #: :mod:`repro.audit.runner`) uses its own string-seeded
        #: ``random.Random(f"{seed}:<purpose>:<fault>")`` streams,
        #: reproducible across processes, resumes and shard layouts.
        self.seed = seed
        #: observability hook: called with one dict per fabric event
        #: (dispatch, heartbeat, result, crash, respawn, bisect,
        #: quarantine, drain); the fault-injection tests use it to kill
        #: workers at precise moments
        self.events = events
        #: deterministic fault injection for tests/CI: a dict with
        #: ``crash_keys`` / ``hang_keys`` / ``hang_seconds``
        self.chaos = chaos
        #: per-worker resident-set cap in bytes: a worker whose last
        #: heartbeat reported more is SIGKILLed and its shard retried on
        #: a fresh process — the pool-level backstop behind the
        #: in-engine pressure ladder (None disables the cap)
        self.worker_rss_cap = worker_rss_cap

    def to_json(self):
        return {
            "workers": self.workers,
            "shard_size": self.shard_size,
            "pack_width": self.pack_width,
            "shard_timeout": self.shard_timeout,
            "heartbeat_timeout": self.heartbeat_timeout,
            "hang_grace": self.hang_grace,
            "max_retries": self.max_retries,
            "worker_rss_cap": self.worker_rss_cap,
        }


class _WorkerHandle:
    """Coordinator-side state of one pool worker.

    ``cmd`` is the blocking send end of the command pipe; ``reader``
    is a :class:`FrameReader` over the report pipe, so a worker that
    wedges mid-frame can never block the coordinator's event loop.
    """

    __slots__ = ("worker_id", "process", "cmd", "reader", "shard",
                 "dispatched_at", "last_beat", "last_rss", "killing",
                 "ready")

    def __init__(self, worker_id, process, cmd, reader):
        self.worker_id = worker_id
        self.process = process
        self.cmd = cmd
        self.reader = reader
        self.shard = None  # in-flight Shard, if busy
        self.dispatched_at = None
        self.last_beat = None
        self.last_rss = None  # bytes, from the latest heartbeat
        self.killing = False  # SIGKILL issued, death not yet reaped
        self.ready = False  # first message received

    @property
    def busy(self):
        return self.shard is not None


class _FabricAccounting:
    """Counters surfaced as ``runtime_summary()["fabric"]``."""

    def __init__(self):
        self.workers = 0
        self.shards_planned = 0
        self.shards_completed = 0
        self.retries = 0
        self.respawns = 0
        self.bisections = 0
        self.timeouts = 0
        self.hangs = 0  # stalled-but-alive workers reaped by the watchdog
        self.quarantined_by_crash = []  # fault keys, in fault order
        self.resumed_shards = 0
        self.rss_recycles = 0  # workers killed for breaching the RSS cap
        self.peak_worker_rss = 0  # bytes, max over every heartbeat/shard

    def to_json(self):
        return {
            "workers": self.workers,
            "shards_planned": self.shards_planned,
            "shards_completed": self.shards_completed,
            "retries": self.retries,
            "respawns": self.respawns,
            "bisections": self.bisections,
            "timeouts": self.timeouts,
            "hangs": self.hangs,
            "quarantined_by_crash": len(self.quarantined_by_crash),
            "resumed_shards": self.resumed_shards,
            "rss_recycles": self.rss_recycles,
            "peak_worker_rss": self.peak_worker_rss,
        }


class ShardFabric:
    """One sharded, fault-tolerant campaign (see module docstring)."""

    def __init__(
        self,
        compiled,
        sequence,
        fault_set,
        strategy="MOT",
        ladder=None,
        node_limit=None,
        governor=None,
        checkpoint_path=None,
        fallback_frames=5,
        initial_state=None,
        variable_scheme="interleaved",
        xred=True,
        pre_pass_3v=True,
        circuit_spec=None,
        signal_guard=None,
        config=None,
        resume_from=None,
        pressure=None,
        tracer=None,
        metrics=None,
        progress_hook=None,
    ):
        from repro.bdd.pressure import PressureConfig
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.tracer import NULL_TRACER
        from repro.symbolic.hybrid import DEFAULT_NODE_LIMIT

        if isinstance(fault_set, (list, tuple)):
            fault_set = FaultSet(fault_set)
        if ladder is None:
            ladder = DegradationLadder.from_strategy(strategy)
        elif not isinstance(ladder, DegradationLadder):
            ladder = DegradationLadder(ladder)
        self.compiled = compiled
        self.sequence = [tuple(v) for v in sequence]
        self.fault_set = fault_set
        self.ladder = ladder
        self.node_limit = (
            DEFAULT_NODE_LIMIT if node_limit is None else node_limit
        )
        self.governor = governor or ResourceGovernor()
        self.checkpoint_path = checkpoint_path
        self.fallback_frames = fallback_frames
        if initial_state is None:
            from repro.logic import threeval

            initial_state = [threeval.X] * compiled.num_dffs
        self.initial_state = list(initial_state)
        self.variable_scheme = variable_scheme
        self.xred = xred
        self.pre_pass_3v = pre_pass_3v
        self.circuit_spec = circuit_spec or compiled.circuit.name
        self.signal_guard = signal_guard
        self.config = config or FabricConfig()
        self.resume_from = resume_from
        # the pressure policy is shipped to workers as its JSON dict;
        # each worker rebuilds a PressureConfig and samples its *own*
        # process RSS against it
        if isinstance(pressure, dict):
            pressure = PressureConfig.from_json(pressure)
        self.pressure = pressure

        # observability: workers trace into canonical (wall-free)
        # in-memory sinks and ship records + metric snapshots home in
        # result payloads; the coordinator replays them into *tracer*
        # sorted by shard id (deterministic bytes) and folds snapshots
        # into *metrics*.  Heartbeat metric deltas feed only the live
        # progress display, never the merged result.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.progress_hook = progress_hook
        self._observe = self.tracer.enabled or metrics is not None
        self._beat_registry = MetricsRegistry() if self._observe else None
        self._shard_workers = {}  # shard_id -> worker_id attribution
        self._resumed_shard_ids = set()

        self._faults = [record.fault for record in fault_set]
        # backoff jitter only — see FabricConfig.seed for why this can
        # never influence verdicts
        self._rng = random.Random(self.config.seed)
        self._handles = {}  # worker_id -> _WorkerHandle
        self._next_worker_id = 0
        self._pending = []  # Shards awaiting dispatch
        self._results = {}  # shard_id -> payload
        self._shard_records = {}  # shard_id -> indices (for merge order)
        self._stop_reason = None
        self._draining = False
        self._writer = None
        self._worker_nodes = 0  # node allocations reported by shards
        self._spawn_failures = 0  # consecutive deaths before readiness
        self._faults_done = 0  # faults in completed shards
        self._shard_demotions = 0  # demotions reported by shards
        self._start_monotonic = _time.monotonic()
        self.accounting = _FabricAccounting()

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def _emit(self, event, **fields):
        if self.config.events is not None:
            fields["event"] = event
            self.config.events(fields)

    # ------------------------------------------------------------------
    # planning and resumption
    # ------------------------------------------------------------------
    def _live_indices(self):
        return [
            index
            for index, record in enumerate(self.fault_set)
            if record.status in (UNDETECTED, X_REDUNDANT)
        ]

    def _absorb_resume(self):
        """Apply completed shards of a prior run; returns covered set."""
        checkpoint = self.resume_from
        if checkpoint is None:
            return set(), 0
        keys = [record.fault.key() for record in self.fault_set]
        verify_fingerprint(
            checkpoint.path, checkpoint.fingerprint, self.compiled, keys
        )
        if keys != checkpoint.fault_keys:
            raise CheckpointError(
                checkpoint.path,
                "fault universe does not match the checkpointed campaign "
                f"({len(keys)} vs {len(checkpoint.fault_keys)} faults)",
            )
        next_ordinal = 0
        for shard_id in sorted(checkpoint.shards):
            record = checkpoint.shards[shard_id]
            payload = dict(record["summary"])
            payload["states"] = record["states"]
            payload["demotion_log"] = []
            payload["quarantined"] = [
                fault_key_from_json(k) for k in record["quarantined"]
            ]
            self._apply_payload(shard_id, record["indices"], payload,
                                checkpointed=True)
            self._resumed_shard_ids.add(shard_id)
            self.accounting.resumed_shards += 1
            next_ordinal = max(next_ordinal, shard_id[0] + 1)
        return checkpoint.covered_indices(), next_ordinal

    def _plan(self):
        covered, next_ordinal = self._absorb_resume()
        live = [i for i in self._live_indices() if i not in covered]
        align = (
            self.config.pack_width
            if self.pre_pass_3v
            or any(not rung.symbolic for rung in self.ladder.rungs)
            else None
        )
        size = aligned_shard_size(
            len(live), max(self.config.workers, 1),
            shard_size=self.config.shard_size, align=align,
        )
        shards = plan_shards(live, size)
        for shard in shards:
            shard.shard_id = (shard.shard_id[0] + next_ordinal,)
        self._pending = shards
        # absorbed shards count as planned: completed/planned then reads
        # as overall progress even on a resumed run
        self.accounting.shards_planned = (
            len(shards) + self.accounting.resumed_shards
        )

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def _open_writer(self):
        if self.checkpoint_path is None:
            return
        self._writer = FabricCheckpointWriter(self.checkpoint_path)
        if self.resume_from is None:
            fault_keys = [r.fault.key() for r in self.fault_set]
            self._writer.write_fabric_header(
                circuit_spec=self.circuit_spec,
                sequence=self.sequence,
                fault_keys=fault_keys,
                ladder=self.ladder,
                node_limit=self.node_limit,
                initial_state=self.initial_state,
                variable_scheme=self.variable_scheme,
                fallback_frames=self.fallback_frames,
                xred=self.xred,
                pre_pass_3v=self.pre_pass_3v,
                config=self.config.to_json(),
                fingerprint=circuit_fingerprint(self.compiled, fault_keys),
            )

    # ------------------------------------------------------------------
    # the worker pool
    # ------------------------------------------------------------------
    def _context(self):
        method = self.config.start_method
        if method is None:
            available = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in available else "spawn"
        return multiprocessing.get_context(method)

    def _init_payload(self):
        return {
            "compiled": self.compiled,
            "faults": self._faults,
            "sequence": self.sequence,
            "ladder": self.ladder.to_json(),
            "node_limit": self.node_limit,
            "fallback_frames": self.fallback_frames,
            "initial_state": self.initial_state,
            "variable_scheme": self.variable_scheme,
            "xred": self.xred,
            "pre_pass_3v": self.pre_pass_3v,
            "heartbeat_interval": self.config.heartbeat_interval,
            "chaos": self.config.chaos,
            # ship the active failpoint spec so worker-side sites
            # (heartbeat drop/dup, stall, pipe truncate, bdd.alloc,
            # pressure rungs) fire in the pool exactly as inline
            "failpoints": _failpoints.active_spec(),
            "pressure": (
                self.pressure.to_json() if self.pressure is not None else None
            ),
            "observe": self._observe,
        }

    def _spawn_worker(self, ctx, init):
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        # two half-duplex pipes: commands stay blocking (tiny, always
        # drained), reports are read through a non-blocking FrameReader
        # so a half-written frame cannot stall the event loop
        cmd_recv, cmd_send = ctx.Pipe(duplex=False)
        report_recv, report_send = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=worker_main,
            args=(worker_id, WorkerPipes(cmd_recv, report_send), init),
            name=f"fabric-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        cmd_recv.close()
        report_send.close()
        handle = _WorkerHandle(
            worker_id, process, cmd_send, FrameReader(report_recv)
        )
        handle.last_beat = _time.monotonic()
        self._handles[worker_id] = handle
        self.accounting.workers = max(
            self.accounting.workers, len(self._handles)
        )
        return handle

    def _try_spawn(self, ctx, init):
        """Spawn a replacement worker, tolerating transient failures.

        A respawn can fail for reasons that pass (fork EAGAIN, a brief
        fd squeeze); one failure retries on the next event-loop pass
        instead of crashing the campaign.  Three consecutive failures
        — shared with the died-before-ready counter, and reset by any
        worker reaching readiness — mean the pool is unrecoverable:
        :class:`WorkerCrashed` propagates.  Returns None on a
        tolerated failure.
        """
        try:
            if _failpoints.fire("fabric.respawn.fail"):
                raise OSError("injected: failpoint fabric.respawn.fail")
            return self._spawn_worker(ctx, init)
        except OSError as exc:
            self._spawn_failures += 1
            self._emit(
                "respawn-failed", error=str(exc),
                failures=self._spawn_failures,
            )
            if self._spawn_failures >= 3:
                raise WorkerCrashed(
                    None,
                    f"{self._spawn_failures} consecutive worker spawn "
                    f"failures (last: {exc})",
                )
            return None

    def _task_opts(self):
        """Apportion the governor's budgets for one dispatch."""
        deadline = None
        if self.governor.deadline is not None:
            deadline = max(self.governor.deadline - self.governor.elapsed(),
                           0.0)
        node_share = None
        if self.governor.node_budget is not None:
            node_share = max(
                self.governor.node_budget // max(self.config.workers, 1), 1
            )
        return {
            "deadline": deadline,
            "node_budget": node_share,
            "fault_frame_nodes": self.governor.fault_frame_nodes,
            "fault_frame_events": self.governor.fault_frame_events,
            # per-process limits: every worker owns its whole RSS, so
            # these are handed down unsplit
            "rss_budget": self.governor.rss_budget,
            "cache_budget": self.governor.cache_budget,
        }

    def _dispatch(self, handle, shard):
        opts = self._task_opts()
        handle.shard = shard
        handle.dispatched_at = _time.monotonic()
        handle.last_beat = handle.dispatched_at
        handle.cmd.send(("run", shard.shard_id, shard.indices, opts))
        self._emit(
            "dispatch",
            worker_id=handle.worker_id,
            pid=handle.process.pid,
            shard=shard_id_text(shard.shard_id),
            faults=len(shard),
        )

    def _kill_worker(self, handle, reason):
        handle.killing = True
        if reason == "rss-cap":
            self.accounting.rss_recycles += 1
            self._emit(
                "recycle", worker_id=handle.worker_id, reason=reason,
                rss=handle.last_rss,
                shard=shard_id_text(handle.shard.shard_id)
                if handle.shard else None,
            )
        elif reason == "hang":
            # stalled but alive: the process exists, the pipe is open,
            # yet no beat arrived for hang_grace intervals — distinct
            # from a death (sentinel fires) and from a slow shard
            # (which keeps beating); accounted separately so operators
            # can tell wedged processes from genuine timeouts
            self.accounting.hangs += 1
            self._emit(
                "hang", worker_id=handle.worker_id,
                shard=shard_id_text(handle.shard.shard_id)
                if handle.shard else None,
            )
        else:
            self.accounting.timeouts += 1
            self._emit(
                "timeout", worker_id=handle.worker_id, reason=reason,
                shard=shard_id_text(handle.shard.shard_id)
                if handle.shard else None,
            )
        try:
            handle.process.kill()
        except OSError:
            pass

    def _shutdown_pool(self):
        for handle in self._handles.values():
            try:
                handle.cmd.send(("stop",))
            except OSError:
                pass
        for handle in self._handles.values():
            handle.process.join(timeout=1.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=1.0)
            if handle.process.is_alive():  # pragma: no cover - stubborn
                handle.process.kill()
                handle.process.join(timeout=1.0)
            try:
                handle.cmd.close()
            except OSError:
                pass
            handle.reader.close()
        self._handles.clear()

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------
    def _backoff(self, crashes):
        delay = min(
            self.config.backoff_cap,
            self.config.backoff_base * (2 ** (crashes - 1)),
        )
        return delay * (1.0 + self.config.backoff_jitter * self._rng.random())

    def _record_crash(self, shard, reason):
        """Retry, bisect or quarantine a shard whose attempt died."""
        if shard.shard_id in self._results:
            return  # a late result already landed; nothing to redo
        shard.crashes += 1
        self._emit(
            "crash", shard=shard_id_text(shard.shard_id),
            crashes=shard.crashes, reason=reason,
        )
        if shard.crashes < self.config.max_retries:
            self.accounting.retries += 1
            shard.not_before = _time.monotonic() + self._backoff(shard.crashes)
            self._pending.append(shard)
            return
        if len(shard) > 1:
            self.accounting.bisections += 1
            low, high = shard.split()
            self._emit(
                "bisect", shard=shard_id_text(shard.shard_id),
                into=[shard_id_text(low.shard_id),
                      shard_id_text(high.shard_id)],
            )
            self._pending.extend((low, high))
            return
        # a singleton shard that keeps killing workers: the fault is
        # poison — quarantine it instead of looping forever
        index = shard.indices[0]
        record = self.fault_set.records[index]
        record.mark_quarantined()
        self.accounting.quarantined_by_crash.append(record.fault.key())
        self._emit(
            "quarantine", shard=shard_id_text(shard.shard_id),
            fault=str(record.fault.key()),
        )
        # coordinator-side quarantine: no worker trace exists for this
        # fault, so emit the event here to keep the merged trace's
        # quarantine count reconcilable with the result
        self.tracer.event(
            "quarantine",
            fault=str(record.fault.key()),
            shard=shard_id_text(shard.shard_id),
            reason="crash",
        )

    def _on_worker_death(self, handle, reason):
        self._handles.pop(handle.worker_id, None)
        try:
            handle.cmd.close()
        except OSError:
            pass
        handle.reader.close()
        shard = handle.shard
        handle.shard = None
        if shard is not None:
            self._record_crash(shard, reason)
        if not handle.ready:
            # died before its first message: the pool itself is broken
            # (import error under spawn, OOM on start-up, ...), not a
            # poison shard — bail out instead of respawning forever
            self._spawn_failures += 1
            if self._spawn_failures >= 3:
                raise WorkerCrashed(
                    handle.worker_id,
                    f"{self._spawn_failures} consecutive workers died "
                    f"before reporting ready (last: {reason})",
                    shard_id=(
                        shard_id_text(shard.shard_id) if shard else None
                    ),
                )
        return shard

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def _apply_payload(self, shard_id, indices, payload, checkpointed=False):
        if shard_id in self._results:
            return
        self._results[shard_id] = payload
        self._shard_records[shard_id] = list(indices)
        for index, state in zip(indices, payload["states"]):
            self.fault_set.records[index].state_from_json(state)
        self._worker_nodes += payload.get("nodes_allocated", 0)
        self._faults_done += len(indices)
        self._shard_demotions += payload.get("demotions", 0) or 0
        self.accounting.shards_completed += 1
        if self._writer is not None and not checkpointed:
            self._writer.write_shard(shard_id, indices, payload)

    def _accept_result(self, handle, shard_id, payload):
        shard = handle.shard
        handle.shard = None
        if shard is None or shard.shard_id != shard_id:
            # a late result from a worker we already gave up on
            shard = None
        indices = (
            shard.indices if shard is not None
            else self._find_pending_indices(shard_id)
        )
        if indices is None:
            return
        self._shard_workers.setdefault(shard_id, handle.worker_id)
        self._apply_payload(shard_id, indices, payload)
        self._emit(
            "result", worker_id=handle.worker_id,
            shard=shard_id_text(shard_id), stopped=payload["stopped"],
        )
        self._emit_progress()

    def _find_pending_indices(self, shard_id):
        for position, shard in enumerate(self._pending):
            if shard.shard_id == shard_id:
                del self._pending[position]
                return shard.indices
        return None

    # ------------------------------------------------------------------
    # the event loop
    # ------------------------------------------------------------------
    def _check_stop_conditions(self):
        if (
            self.signal_guard is not None
            and self.signal_guard.stop_requested
            and not self._draining
        ):
            self._draining = True
            self._stop_reason = "signal"
            self._emit("drain", reason="signal")
        if (
            self.governor.deadline is not None
            and self.governor.elapsed() >= self.governor.deadline
            and not self._draining
        ):
            self._draining = True
            self._stop_reason = "deadline"
            self._emit("drain", reason="deadline")

    def _dispatch_ready(self, ctx, init):
        if self._draining:
            return
        now = _time.monotonic()
        idle = [h for h in self._handles.values()
                if not h.busy and not h.killing]
        while idle and self._pending:
            ready = [s for s in self._pending if s.not_before <= now]
            if not ready:
                break
            ready.sort(key=lambda s: s.shard_id)
            shard = ready[0]
            self._pending.remove(shard)
            self._dispatch(idle.pop(), shard)
        # keep the pool at strength while work remains
        want = min(self.config.workers,
                   len(self._pending) + sum(
                       1 for h in self._handles.values() if h.busy))
        while len(self._handles) < want:
            if self._try_spawn(ctx, init) is None:
                break  # tolerated failure: retry next event-loop pass
            self.accounting.respawns += 1

    def _enforce_timeouts(self):
        now = _time.monotonic()
        for handle in list(self._handles.values()):
            if not handle.busy or handle.killing:
                continue
            if (
                self.config.shard_timeout is not None
                and now - handle.dispatched_at > self.config.shard_timeout
            ):
                self._kill_worker(handle, "shard-timeout")
            elif (
                self.config.heartbeat_timeout is not None
                and now - handle.last_beat > self.config.heartbeat_timeout
            ):
                self._kill_worker(handle, "heartbeat-timeout")
            elif (
                self.config.heartbeat_timeout is None
                and self.config.hang_grace is not None
                and now - handle.last_beat
                > max(
                    self.config.hang_grace
                    * self.config.heartbeat_interval,
                    _HANG_WINDOW_FLOOR,
                )
            ):
                self._kill_worker(handle, "hang")
            elif (
                self.config.worker_rss_cap is not None
                and handle.last_rss is not None
                and handle.last_rss > self.config.worker_rss_cap
            ):
                self._kill_worker(handle, "rss-cap")

    def _wait_timeout(self):
        timeout = _POLL_INTERVAL
        now = _time.monotonic()
        for shard in self._pending:
            if shard.not_before > now:
                timeout = min(timeout, shard.not_before - now)
        return max(timeout, 0.01)

    def _handle_message(self, handle, message):
        if not handle.ready:
            handle.ready = True
            self._spawn_failures = 0
        kind = message[0]
        if kind == "ready":
            handle.last_beat = _time.monotonic()
        elif kind == "heartbeat":
            _, worker_id, shard_id, frame, rss, metrics_delta = message
            handle.last_beat = _time.monotonic()
            if rss is not None:
                handle.last_rss = rss
                self.accounting.peak_worker_rss = max(
                    self.accounting.peak_worker_rss, rss
                )
            if self._beat_registry is not None:
                self._beat_registry.fold_delta(metrics_delta)
            self._emit(
                "heartbeat", worker_id=worker_id,
                pid=handle.process.pid,
                shard=shard_id_text(shard_id), frame=frame, rss=rss,
            )
            self._emit_progress(frame=frame)
        elif kind == "result":
            _, _worker_id, shard_id, payload = message
            self._accept_result(handle, shard_id, payload)
        elif kind == "error":
            _, _worker_id, shard_id, reason = message
            shard = handle.shard
            handle.shard = None
            if shard is not None and shard.shard_id == shard_id:
                self._record_crash(shard, reason)

    def _drain_reader(self, handle):
        """Process every complete report frame; False once the stream
        is dead (EOF past the buffered frames, or unparseable)."""
        try:
            for message in handle.reader.drain():
                self._handle_message(handle, message)
        except (FrameProtocolError, OSError):
            return False
        return not handle.reader.at_eof()

    def _pump_events(self):
        """Wait for pipe traffic or worker deaths and process them.

        Report pipes are drained through each handle's
        :class:`FrameReader`: complete frames are dispatched, a
        partial frame stays buffered and the loop moves on — a worker
        wedged mid-write (``fabric.pipe.truncate``) degrades into a
        silent worker for the hang watchdog instead of a deadlocked
        coordinator.
        """
        sources = {}
        for handle in self._handles.values():
            sources[handle.reader] = handle
            sources[handle.process.sentinel] = handle
        if not sources:
            return
        ready = _connection_wait(list(sources), timeout=self._wait_timeout())
        dead = []
        for source in ready:
            handle = sources[source]
            if source is handle.reader:
                if not self._drain_reader(handle):
                    dead.append(handle)
            elif not handle.process.is_alive():
                dead.append(handle)
        for handle in dead:
            if handle.worker_id not in self._handles:
                continue  # reaped via the other source already
            # drain any result the worker managed to send before dying
            # (e.g. killed for a timeout it had just beaten)
            self._drain_reader(handle)
            handle.process.join(timeout=0.1)
            code = handle.process.exitcode
            reason = (
                "killed" if handle.killing else f"worker died (exit {code})"
            )
            self._on_worker_death(handle, reason)

    def _run_pool(self):
        ctx = self._context()
        init = self._init_payload()
        for _ in range(min(self.config.workers, max(len(self._pending), 1))):
            self._spawn_worker(ctx, init)

        def any_busy():
            return any(h.busy for h in self._handles.values())

        try:
            while (self._pending and not self._draining) or any_busy():
                self._check_stop_conditions()
                self._dispatch_ready(ctx, init)
                self._enforce_timeouts()
                self._pump_events()
        finally:
            self._shutdown_pool()

    def _run_inline(self):
        """``workers=0``: same sharding/merge path, no processes."""
        from repro.runtime.fabric.worker import _make_observability

        while self._pending:
            self._check_stop_conditions()
            if self._draining:
                break
            self._pending.sort(key=lambda s: s.shard_id)
            shard = self._pending.pop(0)
            opts = self._task_opts()
            if self.governor.node_budget is not None:
                # sequential execution: each shard gets what is left of
                # the whole budget, not a per-worker slice
                opts["node_budget"] = max(
                    self.governor.node_budget - self._worker_nodes, 1
                )
            governor = ResourceGovernor(
                deadline=opts["deadline"],
                node_budget=opts["node_budget"],
                fault_frame_nodes=opts["fault_frame_nodes"],
                fault_frame_events=opts["fault_frame_events"],
                rss_budget=opts["rss_budget"],
                cache_budget=opts["cache_budget"],
            )
            tracer, registry = _make_observability(
                {"observe": self._observe}
            )
            try:
                payload = run_shard(
                    self.compiled, self._faults, self.sequence,
                    shard.indices, self._campaign_kwargs(),
                    governor=governor, tracer=tracer, metrics=registry,
                )
            except Exception as exc:
                shard.not_before = 0.0  # no backoff sleeps inline
                self._record_crash(shard, f"{type(exc).__name__}: {exc}")
                continue
            self._apply_payload(shard.shard_id, shard.indices, payload)
            if self._beat_registry is not None:
                # no heartbeats inline: feed the progress display from
                # the completed shard's snapshot instead
                self._beat_registry.fold_snapshot(payload.get("metrics"))
            self._emit(
                "result", worker_id=None,
                shard=shard_id_text(shard.shard_id),
                stopped=payload["stopped"],
            )
            self._emit_progress()

    def _campaign_kwargs(self):
        return {
            "ladder": self.ladder,
            "node_limit": self.node_limit,
            "checkpoint_path": None,
            "checkpoint_every": 1,
            "fallback_frames": self.fallback_frames,
            "initial_state": self.initial_state,
            "variable_scheme": self.variable_scheme,
            "xred": self.xred,
            "pre_pass_3v": self.pre_pass_3v,
            "pressure": (
                self.pressure.to_json() if self.pressure is not None else None
            ),
        }

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _emit_progress(self, frame=None):
        if self.progress_hook is None:
            return
        now = _time.monotonic()
        payload = {
            "shards_done": self.accounting.shards_completed,
            "shards": self.accounting.shards_planned,
            "workers": len(self._handles) or None,
            "frame": frame,
            # live-consumer enrichment (ProgressLine, /jobs/<id>/events,
            # `repro top`): throughput/ETA inputs plus the health signals
            # an operator actually watches
            "monotonic": round(now, 3),
            "elapsed": round(now - self._start_monotonic, 3),
            "faults_done": self._faults_done,
            "faults_total": len(self._faults),
            "nodes_allocated": self._worker_nodes,
            "demotions": self._shard_demotions,
            "worker_rss": {
                str(worker_id): handle.last_rss
                for worker_id, handle in sorted(self._handles.items())
                if getattr(handle, "last_rss", None)
            },
            "peak_worker_rss": self.accounting.peak_worker_rss,
        }
        if self._beat_registry is not None:
            payload["metrics"] = self._beat_registry.flat()
        self.progress_hook(payload)

    def _write_observability(self, stopped, merged):
        """Merged trace, final metrics and the top-level summary.

        Shards are replayed in shard-id order with worker attribution
        stamped onto every record, so two runs with the same seeds
        produce byte-identical merged traces (canonical ``wall=False``
        worker records, deterministic coordinator ``seq`` numbering).
        """
        if not self._observe:
            return
        from repro.obs.metrics import MetricsRegistry

        final_registry = MetricsRegistry()
        for shard_id in sorted(self._results):
            final_registry.fold_snapshot(
                self._results[shard_id].get("metrics")
            )
        if self.metrics is not None:
            self.metrics.fold_snapshot(final_registry.snapshot())
        if not self.tracer.enabled:
            return
        truncated = 0
        for shard_id in sorted(self._results):
            payload = self._results[shard_id]
            worker = self._shard_workers.get(shard_id)
            dropped = payload.get("trace_dropped", 0) or 0
            truncated += dropped
            span = self.tracer.span(
                "shard",
                shard=shard_id_text(shard_id),
                worker=worker,
                faults=len(self._shard_records.get(shard_id, ())),
                stopped=payload.get("stopped"),
                resumed=shard_id in self._resumed_shard_ids,
                trace_dropped=dropped,
            )
            extra = {"shard": shard_id_text(shard_id)}
            if worker is not None:
                extra["worker"] = worker
            self.tracer.replay(payload.get("trace") or (), **extra)
            span.close()
        self.tracer.event("fabric", **self.accounting.to_json())
        flat = final_registry.flat()
        if flat:
            self.tracer.metrics("final", flat)
        summary = {
            "stopped": stopped,
            "frames_total": merged["frames_total"],
            "frames_symbolic": merged["frames_symbolic"],
            "frames_three_valued": merged["frames_three_valued"],
            "fallbacks": merged["fallbacks"],
            "gc_runs": merged["gc_runs"],
            "demotions": merged["demotions"],
            "quarantined": merged["quarantined"],
            "detected": len(self.fault_set.detected()),
            "total_faults": len(self.fault_set),
            "peak_nodes": merged["peak_nodes"],
            "pressure_events": merged["pressure_events"],
            "shards": self.accounting.shards_completed,
            "workers": self.accounting.workers,
        }
        if self.accounting.resumed_shards:
            # resumed shards contribute counters but no trace records;
            # drop the reconcilable keys rather than publish totals the
            # trace cannot substantiate
            for key in ("fallbacks", "gc_runs", "demotions",
                        "quarantined", "detected", "pressure_events"):
                summary.pop(key)
            summary["resumed_shards"] = self.accounting.resumed_shards
        self.tracer.summary(summary)

    # ------------------------------------------------------------------
    # merging
    # ------------------------------------------------------------------
    def _merge(self):
        """Fold shard payloads into one result, sorted by shard id.

        ``frames_total`` is the deepest frame any shard reached;
        frame/fallback/gc counters are *summed* across shards (they are
        work accounting, and their zero-ness — which is what
        ``CampaignResult.exact`` inspects — is preserved either way).
        """
        from repro.runtime.campaign import CampaignResult

        frames_total = 0
        frames_symbolic = 0
        frames_three_valued = 0
        fallbacks = 0
        gc_runs = 0
        peak_nodes = 2
        demotions = 0
        demotion_log = []
        quarantined = []
        rung_population = {}
        shard_stop = None
        pressure = None
        for shard_id in sorted(self._results):
            payload = self._results[shard_id]
            frames_total = max(frames_total, payload["frames_total"])
            frames_symbolic += payload["frames_symbolic"]
            frames_three_valued += payload["frames_three_valued"]
            fallbacks += payload["fallbacks"]
            gc_runs += payload["gc_runs"]
            peak_nodes = max(peak_nodes, payload["peak_nodes"])
            demotions += payload["demotions"]
            demotion_log.extend(tuple(e) for e in payload["demotion_log"])
            quarantined.extend(payload["quarantined"])
            for rung, population in payload["rung_population"].items():
                rung_population[rung] = (
                    rung_population.get(rung, 0) + population
                )
            if payload["stopped"] != COMPLETED and shard_stop is None:
                shard_stop = payload["stopped"]
            pressure = _merge_pressure(pressure, payload.get("pressure"))
            self.accounting.peak_worker_rss = max(
                self.accounting.peak_worker_rss,
                payload.get("peak_rss") or 0,
            )
        quarantined.extend(self.accounting.quarantined_by_crash)
        self.governor.nodes_allocated += self._worker_nodes

        if self._stop_reason is not None:
            stopped = self._stop_reason
        elif shard_stop is not None:
            stopped = shard_stop
        elif self._pending:
            stopped = "incomplete"  # should not happen; be honest if it does
        else:
            stopped = COMPLETED

        fabric = self.accounting.to_json()
        self._write_observability(
            stopped,
            {
                "frames_total": frames_total,
                "frames_symbolic": frames_symbolic,
                "frames_three_valued": frames_three_valued,
                "fallbacks": fallbacks,
                "gc_runs": gc_runs,
                "demotions": demotions,
                "quarantined": len(quarantined),
                "peak_nodes": peak_nodes,
                "pressure_events": (
                    pressure["events"] if pressure else 0
                ),
            },
        )
        return CampaignResult(
            self.fault_set,
            self.ladder.rungs[0].strategy,
            frames_total=frames_total,
            frames_symbolic=frames_symbolic,
            frames_three_valued=frames_three_valued,
            fallbacks=fallbacks,
            gc_runs=gc_runs,
            peak_nodes=peak_nodes,
            demotions=demotions,
            demotion_log=demotion_log,
            quarantined=quarantined,
            checkpoints_written=(
                self._writer.checkpoints_written if self._writer else 0
            ),
            checkpoint_path=self._writer.path if self._writer else None,
            resumed_from=None,
            stopped=stopped,
            budget=self.governor.accounting(),
            ladder_names=self.ladder.names(),
            rung_population=rung_population,
            fabric=fabric,
            pressure=pressure,
        )

    # ------------------------------------------------------------------
    def run(self):
        """Drive the sharded campaign to completion (or graceful stop)."""
        self.governor.start()
        self._open_writer()
        # coordinator-side failpoint fires (fabric checkpoint writes,
        # respawn failures) land in the merged trace/metrics; worker-
        # side fires are traced by the worker's own Campaign and ride
        # home in the shard payload.  Only installed under injection.
        observer_token = None
        if _failpoints.armed_count():
            if self.metrics is not None:
                self.metrics.gauge(
                    "failpoints.active", _failpoints.armed_count()
                )

            def observe(site):
                if self.tracer.enabled:
                    self.tracer.event("failpoint", site=site)
                if self.metrics is not None:
                    self.metrics.inc("failpoints.fired")
                    self.metrics.inc(f"failpoints.site.{site}")

            observer_token = (_failpoints.set_observer(observe),)
        try:
            self._plan()
            if self._pending:
                if self.config.workers == 0:
                    self._run_inline()
                else:
                    self._run_pool()
            return self._merge()
        finally:
            if self._writer is not None:
                self._writer.close()
            if observer_token is not None:
                _failpoints.set_observer(observer_token[0])


# ----------------------------------------------------------------------
# public entry points
# ----------------------------------------------------------------------
def run_sharded_campaign(compiled, sequence, fault_set, **kwargs):
    """Run a campaign across a pool of worker processes.

    Accepts the :class:`ShardFabric` keywords; the fabric knobs can be
    given either as a ``config=FabricConfig(...)`` or via the common
    shortcuts ``workers`` / ``shard_size`` / ``shard_timeout`` /
    ``heartbeat_timeout`` / ``max_retries`` / ``worker_rss_cap``.
    A ``pressure=PressureConfig(...)`` (or its JSON dict) is shipped to
    every worker, which runs the in-engine relief ladder against its
    own process RSS.  Returns a merged
    :class:`~repro.runtime.campaign.CampaignResult` whose
    ``runtime_summary()`` carries a ``"fabric"`` accounting block.
    """
    # knobs of the in-process campaign that have no fabric equivalent:
    # the fabric checkpoints every completed shard, not every N frames
    for name in ("checkpoint_every", "rng"):
        kwargs.pop(name, None)
    config = kwargs.pop("config", None)
    if config is None:
        config_fields = {}
        for name in ("workers", "shard_size", "shard_timeout",
                     "heartbeat_timeout", "max_retries", "worker_rss_cap"):
            if name in kwargs and kwargs[name] is not None:
                config_fields[name] = kwargs.pop(name)
            else:
                kwargs.pop(name, None)
        config = FabricConfig(**config_fields)
    else:
        for name in ("workers", "shard_size", "shard_timeout",
                     "heartbeat_timeout", "max_retries", "worker_rss_cap"):
            kwargs.pop(name, None)
    return ShardFabric(compiled, sequence, fault_set,
                       config=config, **kwargs).run()


def resume_sharded_campaign(
    checkpoint_path,
    compiled=None,
    fault_set=None,
    governor=None,
    signal_guard=None,
    config=None,
    on_corrupt=None,
    **kwargs,
):
    """Resume a sharded campaign from its fabric checkpoint.

    Completed shards are absorbed (their verdicts applied without
    re-simulation); only the remainder of the fault universe is
    re-sharded and run.  Because re-running a shard reproduces its
    verdicts exactly, a fabric resume — unlike an in-process campaign
    resume — does not make the result conservative.

    A shard record failing its CRC is quarantined (default: one
    ``RuntimeWarning`` per record, or pass *on_corrupt* to collect
    reports): its indices drop out of the covered set and the shard
    simply re-runs — same verdicts, more work.  Only a corrupt header
    is verdict-affecting, and still refuses with a typed
    :class:`~repro.runtime.errors.CheckpointError`.
    """
    if on_corrupt is None:
        def on_corrupt(report, _path=str(checkpoint_path)):
            import warnings

            warnings.warn(
                f"fabric checkpoint {_path}: quarantined corrupt record "
                f"at line {report['line']} ({report['reason']}); the "
                "affected shard will re-run",
                RuntimeWarning,
                stacklevel=2,
            )
    checkpoint = load_fabric_checkpoint(checkpoint_path, on_corrupt=on_corrupt)
    if compiled is None:
        from repro.runtime.campaign import _load_compiled

        compiled = _load_compiled(checkpoint.circuit_spec)
    if fault_set is None:
        from repro.faults.collapse import collapse_faults

        faults, _ = collapse_faults(compiled)
        fault_set = FaultSet(faults)
    if config is None:
        recorded = checkpoint.config
        config = FabricConfig(
            workers=recorded.get("workers", 2),
            shard_size=recorded.get("shard_size"),
            shard_timeout=recorded.get("shard_timeout"),
            heartbeat_timeout=recorded.get("heartbeat_timeout"),
            hang_grace=recorded.get("hang_grace", 200),
            max_retries=recorded.get("max_retries", 2),
            worker_rss_cap=recorded.get("worker_rss_cap"),
        )
    fabric = ShardFabric(
        compiled,
        checkpoint.sequence,
        fault_set,
        ladder=DegradationLadder.from_json(checkpoint.ladder_json()),
        node_limit=checkpoint.node_limit,
        governor=governor,
        checkpoint_path=checkpoint_path,
        fallback_frames=checkpoint.fallback_frames,
        initial_state=checkpoint.initial_state,
        variable_scheme=checkpoint.variable_scheme,
        xred=checkpoint.header.get("xred", True),
        pre_pass_3v=checkpoint.header.get("pre_pass_3v", True),
        circuit_spec=checkpoint.circuit_spec,
        signal_guard=signal_guard,
        config=config,
        resume_from=checkpoint,
        **kwargs,
    )
    return fabric.run()
