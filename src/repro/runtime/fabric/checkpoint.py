"""Crash-safe shard-level checkpoints for the fabric coordinator.

The fabric reuses the campaign checkpoint primitives (fsync'd JSONL
append, torn-tail-tolerant reads) but records coarser units: one
``fabric-header`` when the sharded campaign starts, then one ``shard``
record per *completed* shard, written the moment its result lands.  A
killed coordinator therefore resumes with every finished shard's
verdicts intact and only re-runs the remainder — in-flight shards are
deliberately not snapshotted (re-running a shard is exact, so the only
cost of losing one is time).
"""

from repro.faults.status import fault_key_from_json, fault_key_to_json
from repro.runtime.checkpoint import (
    CheckpointWriter,
    read_jsonl_records,
    state_to_text,
    state_from_text,
)
from repro.runtime.errors import CheckpointError


class FabricCheckpointWriter(CheckpointWriter):
    """Appends fabric-header/shard records to a JSONL file."""

    def __init__(self, path, fsync=True):
        super().__init__(
            path, fsync=fsync, site_prefix="fabric.checkpoint"
        )

    def write_fabric_header(
        self,
        circuit_spec,
        sequence,
        fault_keys,
        ladder,
        node_limit,
        initial_state,
        variable_scheme,
        fallback_frames,
        xred,
        pre_pass_3v,
        config,
        fingerprint=None,
    ):
        self._write(
            {
                "type": "fabric-header",
                "circuit": circuit_spec,
                "sequence": [
                    "".join(str(b) for b in vector) for vector in sequence
                ],
                "fault_keys": [fault_key_to_json(k) for k in fault_keys],
                "ladder": ladder.to_json(),
                "node_limit": node_limit,
                "initial_state": state_to_text(initial_state),
                "variable_scheme": variable_scheme,
                "fallback_frames": fallback_frames,
                "xred": xred,
                "pre_pass_3v": pre_pass_3v,
                "config": config,
                "fingerprint": fingerprint,
            }
        )

    def write_shard(self, shard_id, indices, payload):
        self._write(
            {
                "type": "shard",
                "id": list(shard_id),
                "indices": list(indices),
                "states": payload["states"],
                # the raw trace is display data, potentially thousands
                # of records per shard — keep it out of the checkpoint
                # (the bounded metrics snapshot stays, so a resumed run
                # still folds complete final metrics)
                "summary": {
                    key: value
                    for key, value in payload.items()
                    if key not in (
                        "states", "demotion_log", "quarantined", "trace"
                    )
                },
                "quarantined": [
                    fault_key_to_json(k) for k in payload["quarantined"]
                ],
            }
        )
        self.checkpoints_written += 1


class FabricCheckpoint:
    """The parsed header and completed-shard records of a fabric file."""

    def __init__(self, path, header, shards):
        self.path = str(path)
        self.header = header
        #: {shard_id tuple: shard record}, last write wins
        self.shards = shards

    @property
    def circuit_spec(self):
        return self.header["circuit"]

    @property
    def sequence(self):
        return [
            tuple(int(c) for c in line) for line in self.header["sequence"]
        ]

    @property
    def fault_keys(self):
        return [fault_key_from_json(k) for k in self.header["fault_keys"]]

    @property
    def node_limit(self):
        return self.header["node_limit"]

    @property
    def initial_state(self):
        return state_from_text(self.header["initial_state"])

    @property
    def variable_scheme(self):
        return self.header["variable_scheme"]

    @property
    def fallback_frames(self):
        return self.header["fallback_frames"]

    @property
    def config(self):
        return self.header.get("config", {})

    @property
    def fingerprint(self):
        """Circuit + fault-universe hash (None for legacy headers)."""
        return self.header.get("fingerprint")

    def ladder_json(self):
        return self.header["ladder"]

    def covered_indices(self):
        """Indices of every fault a completed shard already classified."""
        covered = set()
        for record in self.shards.values():
            covered.update(record["indices"])
        return covered


def load_fabric_checkpoint(path, on_corrupt=None):
    """Parse a fabric checkpoint: the header plus completed shards.

    With *on_corrupt* (see :func:`~repro.runtime.checkpoint.
    read_jsonl_records`) a damaged ``shard`` record is quarantined
    instead of failing the load — its faults simply drop out of
    ``covered_indices()`` and the resumed fabric re-runs them, which
    is exact.  A damaged *header* still fails the load: without the
    fault universe a resume would be verdict-affecting.
    """
    header = None
    shards = {}
    for record in read_jsonl_records(path, on_corrupt=on_corrupt):
        kind = record.get("type")
        if kind == "fabric-header":
            header = record
        elif kind == "shard":
            shards[tuple(record["id"])] = record
    if header is None:
        raise CheckpointError(path, "no fabric-header record")
    return FabricCheckpoint(path, header, shards)
