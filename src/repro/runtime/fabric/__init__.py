"""Fault-tolerant multiprocess shard fabric.

Splits a campaign's fault universe into shards and runs them on a pool
of worker processes with heartbeat liveness monitoring, per-shard
timeouts, retry with exponential backoff, automatic respawn of crashed
workers, poison-shard bisection into quarantine, and crash-safe
deterministic result merging.  See :mod:`.coordinator` for the full
failure-handling contract.
"""

from repro.runtime.fabric.checkpoint import (
    FabricCheckpoint,
    FabricCheckpointWriter,
    load_fabric_checkpoint,
)
from repro.runtime.fabric.coordinator import (
    FabricConfig,
    ShardFabric,
    resume_sharded_campaign,
    run_sharded_campaign,
)
from repro.runtime.fabric.sharding import (
    Shard,
    aligned_shard_size,
    plan_shards,
    shard_id_text,
)
from repro.runtime.fabric.worker import run_shard

__all__ = [
    "FabricCheckpoint",
    "FabricCheckpointWriter",
    "FabricConfig",
    "Shard",
    "ShardFabric",
    "aligned_shard_size",
    "load_fabric_checkpoint",
    "plan_shards",
    "resume_sharded_campaign",
    "run_shard",
    "run_sharded_campaign",
    "shard_id_text",
]
