"""Partial-frame-tolerant reads of a worker's report pipe.

``multiprocessing.Connection.recv()`` blocks until a *complete*
message arrives.  ``poll()`` only promises that *some* bytes are
readable — so the old coordinator pattern ``while conn.poll():
conn.recv()`` deadlocks the entire event loop the moment a worker
wedges halfway through writing a frame (the ``fabric.pipe.truncate``
failpoint reproduces exactly that: half a length-prefixed frame, then
silence).  One stuck worker must never stall the coordinator.

:class:`FrameReader` therefore bypasses ``recv()``: it puts the read
end into non-blocking mode, buffers whatever bytes are available and
deframes them itself.  An incomplete frame simply stays buffered —
the event loop moves on, and the wedged writer is eventually reaped
by the hang watchdog.  The wire format is CPython's own
``Connection._send_bytes`` framing (which the workers' unmodified
``send()`` produces): a 4-byte big-endian signed length prefix, or
``-1`` followed by an 8-byte unsigned length for messages over 2 GiB.

Only byte-stream transports behave this way, which is what
``multiprocessing.Pipe(duplex=False)`` (an OS pipe) and the POSIX
socketpair behind ``Pipe(duplex=True)`` both are.
"""

import errno
import os
import pickle
import struct

_HEADER = struct.Struct("!i")
_LARGE = struct.Struct("!Q")
_READ_CHUNK = 1 << 16

#: errno values meaning "no bytes right now" on a non-blocking read
_WOULD_BLOCK = (errno.EAGAIN, errno.EWOULDBLOCK)


class FrameProtocolError(Exception):
    """The byte stream stopped being parseable as frames.

    Raised on a negative length prefix (other than the -1 large-frame
    marker) or an unpicklable payload — either means the worker wrote
    garbage, and the coordinator treats it like a dead worker.
    """


class FrameReader:
    """Buffered, non-blocking deframer over one readable Connection."""

    def __init__(self, conn):
        self.conn = conn
        self._fd = conn.fileno()
        os.set_blocking(self._fd, False)
        self._buffer = bytearray()
        self._closed = False

    def fileno(self):
        return self._fd

    @property
    def buffered(self):
        """Bytes sitting in the buffer (>0 mid-frame)."""
        return len(self._buffer)

    def at_eof(self):
        """True once the peer closed and every whole frame was drained."""
        return self._closed and not self._complete_frame_buffered()

    def drain(self):
        """Read what is available and return the complete messages.

        Never blocks.  Bytes of an incomplete trailing frame stay
        buffered for a later call.  Returns a (possibly empty) list;
        after the peer closes, keeps returning already-buffered whole
        frames until :meth:`at_eof` goes True.  Raises
        :class:`FrameProtocolError` on an unparseable stream.
        """
        while not self._closed:
            try:
                chunk = os.read(self._fd, _READ_CHUNK)
            except InterruptedError:
                continue
            except OSError as exc:
                if exc.errno in _WOULD_BLOCK:
                    break
                self._closed = True
                break
            if not chunk:
                self._closed = True
                break
            self._buffer += chunk
            if len(chunk) < _READ_CHUNK:
                break
        messages = []
        while True:
            frame = self._pop_frame()
            if frame is None:
                break
            try:
                messages.append(pickle.loads(frame))
            except Exception as exc:
                raise FrameProtocolError(f"unpicklable frame: {exc}")
        return messages

    def close(self):
        self._closed = True
        try:
            self.conn.close()
        except OSError:
            pass

    # ------------------------------------------------------------------
    def _frame_extent(self):
        """(header_size, payload_size) of the buffered frame head, or
        None while even the length prefix is incomplete."""
        buffer = self._buffer
        if len(buffer) < _HEADER.size:
            return None
        (size,) = _HEADER.unpack_from(buffer)
        if size == -1:  # large-frame escape: 8-byte length follows
            if len(buffer) < _HEADER.size + _LARGE.size:
                return None
            (size,) = _LARGE.unpack_from(buffer, _HEADER.size)
            return _HEADER.size + _LARGE.size, size
        if size < 0:
            raise FrameProtocolError(f"negative frame length {size}")
        return _HEADER.size, size

    def _complete_frame_buffered(self):
        try:
            extent = self._frame_extent()
        except FrameProtocolError:
            return True  # surface the error through drain()
        if extent is None:
            return False
        header, size = extent
        return len(self._buffer) >= header + size

    def _pop_frame(self):
        extent = self._frame_extent()
        if extent is None:
            return None
        header, size = extent
        if len(self._buffer) < header + size:
            return None
        frame = bytes(self._buffer[header:header + size])
        del self._buffer[:header + size]
        return frame
