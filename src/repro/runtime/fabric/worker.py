"""The shard-fabric worker process.

A worker is one OS process owning a :class:`WorkerPipes` pair — a
blocking command pipe in, a report pipe out (which the coordinator
reads through a partial-frame-tolerant deframer).  It receives shard
tasks from the coordinator, runs each as an ordinary in-process
:class:`~repro.runtime.campaign.Campaign` over just that shard's
faults, and reports back:

* ``("ready", worker_id, pid)`` — once, after start-up,
* ``("heartbeat", worker_id, shard_id, frame, rss, metrics_delta)`` —
  at frame boundaries, throttled to ``heartbeat_interval`` seconds;
  the coordinator uses the gaps to detect hung workers and the
  reported resident set size (bytes, None off Linux) to recycle
  workers that bloat past the configured per-worker RSS cap.  When the
  init payload requests observability (``observe=True``) the beat also
  piggybacks a :meth:`~repro.obs.metrics.MetricsRegistry.flush_delta`
  so the coordinator's live progress display tracks shard internals
  without extra pipe traffic,
* ``("result", worker_id, shard_id, payload)`` — the per-fault
  verdicts and counters of a finished shard,
* ``("error", worker_id, shard_id, message)`` — a Python-level
  failure inside the shard run (the worker survives and stays in the
  pool; the coordinator treats the shard like a crashed one).

Workers ignore ``SIGINT`` *and* ``SIGTERM``: on Ctrl-C — or a service
manager's ``SIGTERM`` — the *coordinator* decides whether to drain
gracefully, and a signal delivered to the whole process group must not
kill workers mid-shard.  (``SIGKILL`` still works, and is what the
coordinator itself uses to reap a hung or bloated worker.)

Everything in the init payload and in messages is picklable, so the
fabric works under both the ``fork`` and ``spawn`` start methods.

The init payload may carry a ``chaos`` table (used by the
fault-injection tests and the CI chaos job): shards containing a
*crash* key hard-exit the worker before simulating, shards containing
a *hang* key sleep without heartbeating — deterministic stand-ins for
segfaults and wedged processes.
"""

import os
import pickle
import signal
import struct
import time as _time

from repro import failpoints as _failpoints
from repro.faults.status import FaultSet
from repro.runtime.governor import ResourceGovernor
from repro.runtime.ladder import DegradationLadder
from repro.runtime.memory import RssSampler

#: exit code of a chaos-injected crash (mirrors a SIGKILL-style death)
CHAOS_EXIT_CODE = 139

#: per-shard cap on trace records shipped back in the result payload;
#: overflow is counted (``trace_dropped``) rather than silently lost
TRACE_RECORD_CAP = 4096

#: node allocations between liveness-beat attempts: a beat opportunity
#: at BDD-allocation granularity, so a worker grinding through one
#: enormous frame still proves it is alive (the wall-clock throttle in
#: :meth:`WorkerGovernor.note_node` keeps the pipe traffic bounded)
_BEAT_STRIDE = 2048


class WorkerPipes:
    """The worker's two half-duplex channels: commands in, reports out.

    The coordinator keeps the command pipe blocking (its sends are
    tiny and the worker always drains them) but reads the report pipe
    through a partial-frame-tolerant :class:`~repro.runtime.fabric.
    frames.FrameReader`, so a worker that wedges mid-write can never
    stall the event loop.  Instances are passed as a ``Process`` arg;
    ``multiprocessing``'s reduction machinery handles the nested
    connections under both ``fork`` and ``spawn``.
    """

    def __init__(self, commands, reports):
        self.commands = commands
        self.reports = reports

    def recv(self):
        return self.commands.recv()

    def send(self, message):
        self.reports.send(message)

    def send_truncated(self, message):
        """Write *half* a frame, raw — the ``fabric.pipe.truncate``
        injection: the length prefix promises bytes that never come."""
        blob = pickle.dumps(message)
        frame = struct.pack("!i", len(blob)) + blob
        os.write(self.reports.fileno(), frame[: max(len(frame) // 2, 5)])

    def close(self):
        for conn in (self.commands, self.reports):
            try:
                conn.close()
            except OSError:
                pass


class WorkerGovernor(ResourceGovernor):
    """A resource governor that also emits heartbeats.

    Every frame-boundary check (the campaign main loop *and* the
    word-parallel pre-pass both route through :meth:`check_frame`)
    doubles as a liveness beat, throttled so a fast sweep does not
    flood the pipe.  Each beat carries the worker's current RSS so the
    coordinator can recycle a bloating worker; a sampler is therefore
    always constructed, budget or not.

    Beats also flow at node-allocation granularity (:meth:`note_node`,
    every ``_BEAT_STRIDE`` allocations, same wall-clock throttle): a
    single pathological frame can run for minutes, and the hang
    watchdog must not mistake it for a wedged process.
    """

    def __init__(self, heartbeat, heartbeat_interval, **kwargs):
        kwargs.setdefault("rss_sampler", RssSampler())
        super().__init__(**kwargs)
        self._heartbeat = heartbeat
        self._heartbeat_interval = heartbeat_interval
        self._last_beat = 0.0
        self._since_beat = 0
        #: meter allocations only when a budget asked for it, so an
        #: unbudgeted pooled run reports the same ``nodes_allocated``
        #: (zero) as the inline path — the hook itself stays installed
        #: regardless, purely as the liveness signal
        self._metered = super()._wants_alloc_hook()

    def _wants_alloc_hook(self):
        # always hook allocations, budgets or not: the alloc hook is
        # what keeps heartbeats flowing through long frames
        return True

    def check_frame(self, frame, pack=None):
        super().check_frame(frame, pack=pack)
        self._maybe_beat(frame)

    def note_node(self):
        if self._metered:
            super().note_node()
        self._since_beat += 1
        if self._since_beat >= _BEAT_STRIDE:
            self._since_beat = 0
            self._maybe_beat(self.frame)

    def _maybe_beat(self, frame):
        now = _time.monotonic()
        if now - self._last_beat >= self._heartbeat_interval:
            self._last_beat = now
            self._heartbeat(frame, self.sample_rss())


def run_shard(compiled, faults, sequence, indices, campaign_kwargs,
              governor=None, tracer=None, metrics=None):
    """Run one shard in-process and return its result payload.

    *indices* select the shard's faults out of the canonical *faults*
    order; the returned ``"states"`` list is aligned with them.  This
    is the single execution path shared by pooled workers and the
    fabric's inline (``workers=0``) mode, so both are tested by the
    same code.

    *tracer* (a canonical ``wall=False`` :class:`~repro.obs.tracer.
    Tracer` over a :class:`~repro.obs.tracer.ListSink`) and *metrics*
    (a fresh :class:`~repro.obs.metrics.MetricsRegistry`) are per-shard
    observability channels: their contents ride home in the payload as
    ``"trace"`` / ``"trace_dropped"`` / ``"metrics"`` so the
    coordinator can merge them deterministically.
    """
    from repro.runtime.campaign import Campaign

    fault_set = FaultSet([faults[i] for i in indices])
    if not indices:
        payload = {
            "states": [],
            "stopped": "completed",
            "frames_total": 0,
            "frames_symbolic": 0,
            "frames_three_valued": 0,
            "fallbacks": 0,
            "gc_runs": 0,
            "peak_nodes": 2,
            "demotions": 0,
            "demotion_log": [],
            "quarantined": [],
            "rung_population": {},
            "nodes_allocated": 0,
            "elapsed": 0.0,
            "pressure": None,
            "peak_rss": 0,
        }
        _attach_observability(payload, tracer, metrics)
        return payload
    campaign = Campaign(
        compiled,
        sequence,
        fault_set,
        governor=governor,
        tracer=tracer,
        metrics=metrics,
        **campaign_kwargs,
    )
    result = campaign.run()
    payload = {
        "states": [record.state_to_json() for record in fault_set],
        "stopped": result.stopped,
        "frames_total": result.frames_total,
        "frames_symbolic": result.frames_symbolic,
        "frames_three_valued": result.frames_three_valued,
        "fallbacks": result.fallbacks,
        "gc_runs": result.gc_runs,
        "peak_nodes": result.peak_nodes,
        "demotions": result.demotions,
        "demotion_log": result.demotion_log,
        "quarantined": result.quarantined,
        "rung_population": result.rung_population,
        "nodes_allocated": campaign.governor.nodes_allocated,
        "elapsed": campaign.governor.elapsed(),
        "pressure": result.pressure,
        "peak_rss": campaign.governor.peak_rss,
    }
    _attach_observability(payload, tracer, metrics)
    return payload


def _attach_observability(payload, tracer, metrics):
    """Pack the shard's trace records and metrics into the payload."""
    if metrics is not None:
        payload["metrics"] = metrics.snapshot()
    if tracer is not None:
        tracer.close()  # flush any stray open spans into the sink
        sink = tracer.sink
        payload["trace"] = list(getattr(sink, "records", ()) or ())
        payload["trace_dropped"] = getattr(sink, "dropped", 0)


def _make_observability(init):
    """(tracer, metrics) for one shard run, or (None, None)."""
    if not init.get("observe"):
        return None, None
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import ListSink, Tracer

    return Tracer(ListSink(TRACE_RECORD_CAP), wall=False), MetricsRegistry()


def _campaign_kwargs(init, opts):
    return {
        "ladder": DegradationLadder.from_json(init["ladder"]),
        "node_limit": init["node_limit"],
        "checkpoint_path": None,
        # progress (and therefore governor frame checks) every frame:
        # the worker's heartbeat cadence, throttled by wall-clock above
        "checkpoint_every": 1,
        "fallback_frames": init["fallback_frames"],
        "initial_state": init["initial_state"],
        "variable_scheme": init["variable_scheme"],
        "xred": init["xred"],
        "pre_pass_3v": init["pre_pass_3v"],
        # pressure policy ships as its JSON dict; Campaign rebuilds the
        # PressureConfig (each worker samples its own process RSS)
        "pressure": init.get("pressure"),
    }


def _apply_chaos(chaos, shard_keys):
    """Deterministic fault injection for tests and the CI chaos job."""
    if not chaos:
        return
    crash_keys = set(chaos.get("crash_keys") or ())
    hang_keys = set(chaos.get("hang_keys") or ())
    if crash_keys & shard_keys:
        # a segfault-class death: no exception, no cleanup, no message
        os._exit(CHAOS_EXIT_CODE)
    if hang_keys & shard_keys:
        # a wedged worker: alive but silent (no heartbeats)
        _time.sleep(chaos.get("hang_seconds", 3600.0))


def worker_main(worker_id, pipes, init):
    """Entry point of a pool worker process."""
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(sig, signal.SIG_IGN)
        except (ValueError, OSError):  # pragma: no cover - exotic
            pass
    # the coordinator ships its active failpoint spec so injections
    # behave identically pooled and inline; policy counters restart
    # per process (a respawned worker re-fires a ``once`` site)
    _failpoints.configure(init.get("failpoints") or "", replace=True)
    compiled = init["compiled"]
    faults = init["faults"]
    sequence = init["sequence"]
    heartbeat_interval = init.get("heartbeat_interval", 0.05)
    chaos = init.get("chaos")
    try:
        pipes.send(("ready", worker_id, os.getpid()))
        while True:
            message = pipes.recv()
            if message[0] == "stop":
                break
            _, shard_id, indices, opts = message
            if _failpoints.fire("fabric.worker.stall"):
                # a wedged-but-alive process: no beats, no progress —
                # exactly what the hang watchdog exists to catch
                _time.sleep(3600.0)
            _apply_chaos(
                chaos, {faults[i].key() for i in indices}
            )
            tracer, registry = _make_observability(init)

            def heartbeat(frame, rss=None, _shard_id=shard_id,
                          _registry=registry):
                if _failpoints.fire("fabric.heartbeat.drop"):
                    return
                delta = (
                    _registry.flush_delta() if _registry is not None else None
                )
                beat = ("heartbeat", worker_id, _shard_id, frame, rss, delta)
                pipes.send(beat)
                if _failpoints.fire("fabric.heartbeat.dup"):
                    pipes.send(beat)

            governor = WorkerGovernor(
                heartbeat,
                heartbeat_interval,
                deadline=opts.get("deadline"),
                node_budget=opts.get("node_budget"),
                fault_frame_nodes=opts.get("fault_frame_nodes"),
                fault_frame_events=opts.get("fault_frame_events"),
                rss_budget=opts.get("rss_budget"),
                cache_budget=opts.get("cache_budget"),
            )
            try:
                if init.get("task") == "audit":
                    # witness-replay audit shard: same pool, same
                    # liveness/retry machinery, different task body
                    from repro.audit.fabric import run_audit_shard

                    payload = run_audit_shard(
                        compiled, faults, sequence, indices,
                        init["audit"], governor=governor,
                        tracer=tracer, metrics=registry,
                    )
                else:
                    payload = run_shard(
                        compiled, faults, sequence, indices,
                        _campaign_kwargs(init, opts), governor=governor,
                        tracer=tracer, metrics=registry,
                    )
            except Exception as exc:  # deterministic shard failure
                pipes.send(
                    ("error", worker_id, shard_id,
                     f"{type(exc).__name__}: {exc}")
                )
                continue
            if _failpoints.fire("fabric.pipe.truncate"):
                # half a result frame, then silence: the coordinator
                # must buffer the partial frame without blocking and
                # let the hang watchdog reap this worker
                pipes.send_truncated(("result", worker_id, shard_id, payload))
                _time.sleep(3600.0)
            pipes.send(("result", worker_id, shard_id, payload))
    except (EOFError, OSError, KeyboardInterrupt):
        # coordinator went away (or we are being torn down): just exit
        pass
    finally:
        pipes.close()
