"""The graceful degradation ladder.

The paper's hybrid simulator degrades in one global step: symbolic ->
three-valued for a few frames.  The campaign runtime refines this into
a *per-fault* policy: every live fault sits on a rung of a ladder, by
default

    MOT  ->  rMOT  ->  SOT  ->  three-valued

with shrinking OBDD node limits, and is demoted one rung each time its
own propagation blows the node limit or a per-fault frame budget.  A
fault that falls off the bottom is *quarantined* (status
``quarantined``), so one pathological fault can no longer stall a whole
campaign.  Every demotion restarts the fault's detection accumulator
from scratch (exactly like the paper's fallback), so results stay
conservative — demoted runs are flagged ``exact=False``.

:class:`DegradationLadder` is the immutable policy (rung order and
node-limit scales); :class:`LadderState` is the mutable per-campaign
assignment of faults to rungs, which is what checkpoints serialize.
"""

from repro.runtime.errors import DegradationExhausted

THREE_VALUED_RUNG = "3v"

#: strongest-to-weakest order the default ladders are cut from
STRATEGY_ORDER = ("MOT", "rMOT", "SOT", THREE_VALUED_RUNG)

_DEFAULT_SCALES = {"MOT": 1.0, "rMOT": 0.5, "SOT": 0.25}

#: never hand a symbolic session a limit too small to hold terminals
MIN_NODE_LIMIT = 64


class Rung:
    """One ladder rung: an observation strategy plus a node-limit scale."""

    __slots__ = ("strategy", "scale")

    def __init__(self, strategy, scale=None):
        if strategy not in STRATEGY_ORDER:
            raise ValueError(
                f"unknown ladder rung {strategy!r}; "
                f"choose from {', '.join(STRATEGY_ORDER)}"
            )
        if strategy == THREE_VALUED_RUNG:
            scale = None
        elif scale is None:
            scale = _DEFAULT_SCALES[strategy]
        self.strategy = strategy
        self.scale = scale

    @property
    def symbolic(self):
        return self.strategy != THREE_VALUED_RUNG

    def node_limit(self, base_limit):
        """The effective node limit of this rung (None for the 3v rung)."""
        if not self.symbolic:
            return None
        if base_limit is None:
            return None
        return max(int(base_limit * self.scale), MIN_NODE_LIMIT)

    def __repr__(self):
        if self.symbolic:
            return f"Rung({self.strategy}, scale={self.scale})"
        return f"Rung({self.strategy})"


class DegradationLadder:
    """The rung sequence a campaign demotes faults along."""

    def __init__(self, rungs=None):
        if rungs is None:
            rungs = STRATEGY_ORDER
        normalized = []
        for rung in rungs:
            if isinstance(rung, Rung):
                normalized.append(rung)
            elif isinstance(rung, str):
                normalized.append(Rung(rung))
            else:  # ("MOT", 0.75) pairs
                normalized.append(Rung(*rung))
        if not normalized:
            raise ValueError("a ladder needs at least one rung")
        for earlier, later in zip(normalized, normalized[1:]):
            if not earlier.symbolic:
                raise ValueError(
                    "the three-valued rung must be the last rung "
                    f"(found {later.strategy!r} after it)"
                )
        self.rungs = tuple(normalized)

    @classmethod
    def from_strategy(cls, strategy):
        """The default ladder starting at *strategy* (e.g. rMOT->SOT->3v)."""
        if strategy not in STRATEGY_ORDER:
            raise ValueError(
                f"unknown strategy {strategy!r}; "
                f"choose from {', '.join(STRATEGY_ORDER)}"
            )
        return cls(STRATEGY_ORDER[STRATEGY_ORDER.index(strategy):])

    def __len__(self):
        return len(self.rungs)

    def __getitem__(self, index):
        return self.rungs[index]

    def names(self):
        return [rung.strategy for rung in self.rungs]

    def describe(self):
        return " -> ".join(self.names())

    def to_json(self):
        return [[r.strategy, r.scale] for r in self.rungs]

    @classmethod
    def from_json(cls, data):
        return cls([(strategy, scale) for strategy, scale in data])

    def __repr__(self):
        return f"DegradationLadder({self.describe()})"


class LadderState:
    """Mutable fault->rung assignment for one campaign."""

    def __init__(self, ladder):
        self.ladder = ladder
        self._rung_of = {}  # fault key -> rung index
        self.demotions = 0
        # (fault_key, from_rung, to_rung, frame, reason); reason is the
        # trigger class — "space" (node-limit overflow), "pressure"
        # (memory-pressure surrender), "budget" (per-fault budget) or
        # None when the caller did not attribute one
        self.demotion_log = []

    def assign(self, fault_key, rung_index=0):
        if not 0 <= rung_index < len(self.ladder):
            raise ValueError(f"no rung {rung_index} on {self.ladder!r}")
        self._rung_of[fault_key] = rung_index

    def rung_index(self, fault_key):
        return self._rung_of[fault_key]

    def rung(self, fault_key):
        return self.ladder[self._rung_of[fault_key]]

    def forget(self, fault_key):
        """Drop a fault that left the campaign (detected/quarantined)."""
        self._rung_of.pop(fault_key, None)

    def demote(self, fault_key, frame=None, reason=None):
        """Move *fault_key* one rung down; returns the new rung index.

        *reason* tags the demotion-log entry with what triggered the
        demotion (see the ``demotion_log`` comment).  Raises
        :class:`DegradationExhausted` when the fault is already on the
        last rung — the campaign quarantines it then.
        """
        index = self._rung_of[fault_key]
        if index + 1 >= len(self.ladder):
            raise DegradationExhausted(
                fault_key, self.ladder.names()[: index + 1]
            )
        self._rung_of[fault_key] = index + 1
        self.demotions += 1
        self.demotion_log.append(
            (
                fault_key,
                self.ladder[index].strategy,
                self.ladder[index + 1].strategy,
                frame,
                reason,
            )
        )
        return index + 1

    def population(self):
        """Live-fault count per rung name (for progress records)."""
        counts = {name: 0 for name in self.ladder.names()}
        for index in self._rung_of.values():
            counts[self.ladder[index].strategy] += 1
        return counts
