"""Between-frame campaign checkpoints (versioned JSON lines).

A checkpoint file is append-only JSON-lines:

* one ``header`` record written when the campaign starts — circuit
  spec, the full test sequence (vectors as ``01`` strings), ladder,
  node limit, the serialized fault keys and a
  :func:`circuit_fingerprint` of circuit + fault universe (both
  checked on resume; a mismatching fingerprint raises
  :class:`~repro.runtime.errors.CheckpointMismatch`),
* periodic ``checkpoint`` records — frame index, the conservative
  three-valued good state, per-fault status / rung / three-valued
  state diff, RNG state and the campaign counters,
* periodic ``progress`` records (informational only).

Every record carries ``"version": 1``; readers reject other versions.

What is deliberately **not** serialized: the symbolic sessions (BDDs,
detection functions).  Resuming re-opens fresh symbolic sessions from
the three-valued projection, exactly like the paper's space-limit
fallback — so a resumed campaign is conservative and its result is
flagged ``exact=False``.

:class:`SignalGuard` turns ``SIGINT``/``SIGTERM`` into a cooperative
stop request the campaign polls at frame boundaries, writing a final
checkpoint before exiting cleanly.
"""

import errno
import hashlib
import json
import os
import signal
import tempfile
import warnings
import zlib

from repro import failpoints as _failpoints
from repro.faults.status import (
    fault_key_from_json,
    fault_key_to_json,
)
from repro.logic import threeval
from repro.runtime.errors import CheckpointError, CheckpointMismatch

CHECKPOINT_VERSION = 1


def record_crc(body):
    """CRC32 of a serialized record body (the canonical JSON line).

    The canonical form is ``json.dumps(record, sort_keys=True)`` with
    the ``"crc"`` key absent — exactly what :class:`JsonlWriter`
    serializes before splicing the checksum in, and what readers
    reproduce by popping ``"crc"`` and re-dumping.  JSON round-trips
    this form stably (sorted keys, shortest-repr floats, ASCII
    escapes), so writer and reader always agree on the covered bytes.
    """
    return zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF

#: ``fsync`` errno values that mean "this filesystem cannot fsync this
#: descriptor" (overlayfs directories, some tmpfs/FUSE mounts) rather
#: than "your data is lost".  Durability degrades to the filesystem's
#: own guarantees; crashing the checkpoint path would lose *more*.
_FSYNC_UNSUPPORTED_ERRNOS = (errno.EINVAL, errno.EBADF, errno.ENOTSUP)


def fsync_best_effort(fd, path):
    """``os.fsync`` that degrades to a warning where fsync is refused.

    Returns True when the sync happened (or genuinely failed in a way
    worth propagating — those OSErrors are re-raised), False when the
    filesystem refused the fsync itself (``EINVAL``/``EBADF``/
    ``ENOTSUP``), in which case one :class:`RuntimeWarning` is emitted
    and the caller should stop trying to fsync this file.
    """
    try:
        os.fsync(fd)
        return True
    except OSError as exc:
        if exc.errno not in _FSYNC_UNSUPPORTED_ERRNOS:
            raise
        warnings.warn(
            f"fsync not supported for {path!r} ({exc}); durability "
            "degrades to the filesystem's own write-back guarantees",
            RuntimeWarning,
            stacklevel=2,
        )
        return False


def circuit_fingerprint(compiled, fault_keys):
    """Stable identity hash of a circuit plus its fault universe.

    Covers the circuit *structure* — inputs, outputs, flip-flops and
    gates in sorted order — and the serialized fault keys, never object
    identities or the circuit's name, so the same netlist loaded twice
    (or from a renamed file) fingerprints identically while any edit to
    connectivity, gate kinds or the fault list changes the hash.
    Campaign and fabric checkpoint headers embed it at write time;
    resume recomputes it and refuses on mismatch
    (:class:`~repro.runtime.errors.CheckpointMismatch`).
    """
    circuit = getattr(compiled, "circuit", compiled)
    parts = [
        "inputs:" + ",".join(circuit.inputs),
        "outputs:" + ",".join(circuit.outputs),
        "dffs:" + ",".join(
            f"{q}<-{d}" for q, d in sorted(circuit.dffs.items())
        ),
        "gates:" + ";".join(
            f"{net}={gate.kind}({','.join(gate.fanins)})"
            for net, gate in sorted(circuit.gates.items())
        ),
        "faults:" + ";".join(
            json.dumps(fault_key_to_json(key), sort_keys=True)
            for key in fault_keys
        ),
    ]
    digest = hashlib.sha256("\n".join(parts).encode("utf-8"))
    return digest.hexdigest()[:16]


def verify_fingerprint(path, recorded, compiled, fault_keys):
    """Refuse a resume whose checkpoint fingerprint does not match.

    *recorded* is the header's fingerprint (None for legacy headers,
    which are accepted — they predate fingerprinting).
    """
    if recorded is None:
        return
    expected = circuit_fingerprint(compiled, fault_keys)
    if recorded != expected:
        raise CheckpointMismatch(path, expected, recorded)


def write_json_atomic(path, payload):
    """Write *payload* as JSON with no torn-tail window.

    Appending JSONL records survives a crash losing at most the final
    line, but whole-file results (campaign summaries, metrics dumps,
    audit reports) would be left half-written by a crash mid-``write``.
    So: serialize to a temporary file in the *same* directory, fsync
    it, then ``os.replace`` over the target (atomic on POSIX) and fsync
    the directory so the rename itself is durable.  Readers see either
    the complete old file or the complete new one, never a prefix.
    """
    path = str(path)
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
            handle.flush()
            fsync_best_effort(handle.fileno(), tmp_path)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic platforms
        return
    try:
        # overlay/tmpfs mounts may refuse directory fsync outright
        # (EINVAL); the rename already happened, so degrade to a
        # warning rather than failing a write that succeeded
        fsync_best_effort(dir_fd, directory)
    finally:
        os.close(dir_fd)


def state_to_text(state_3v):
    """Render a three-valued state vector as a '01X' string."""
    return "".join(threeval.to_char(v) for v in state_3v)


def state_from_text(text):
    return [threeval.from_char(c) for c in text]


def _diff_to_json(diff_3v):
    """A {dff_index: three-valued value} diff as a JSON object."""
    if diff_3v is None:
        return None
    return {str(dff): threeval.to_char(v) for dff, v in diff_3v.items()}


def _diff_from_json(data):
    if data is None:
        return None
    return {int(dff): threeval.from_char(v) for dff, v in data.items()}


def rng_state_to_json(state):
    """``random.Random.getstate()`` tuples as JSON-friendly lists."""
    version, internal, gauss = state
    return [version, list(internal), gauss]


def rng_state_from_json(data):
    version, internal, gauss = data
    return (version, tuple(internal), gauss)


def _trim_torn_tail(path):
    """Truncate a final line left without its newline (torn write).

    A crash mid-append (SIGKILL, power loss) can leave a partial last
    line; readers already skip it.  But a writer *re-opening* the file
    in append mode would glue its next record onto the partial line,
    turning two harmless artifacts into one corrupt mid-file record
    that costs a quarantined entry on the next read.  Trimming the
    torn tail before appending loses nothing durable — the partial
    record was never readable — and keeps resume-after-crash files
    byte-clean.
    """
    try:
        with open(path, "rb+") as handle:
            handle.seek(0, os.SEEK_END)
            size = handle.tell()
            if size == 0:
                return
            handle.seek(size - 1)
            if handle.read(1) == b"\n":
                return
            # walk back in chunks to the last newline; everything
            # after it is the torn record
            position = size
            keep = 0
            while position > 0:
                chunk_size = min(4096, position)
                position -= chunk_size
                handle.seek(position)
                chunk = handle.read(chunk_size)
                newline = chunk.rfind(b"\n")
                if newline >= 0:
                    keep = position + newline + 1
                    break
            handle.truncate(keep)
    except OSError:
        # unreadable/missing file: the append open below will say so
        pass


class JsonlWriter:
    """Appends versioned, fsync'd JSON-lines records to a file.

    The shared crash-safety primitive behind campaign checkpoints,
    fabric shard checkpoints and the service job journal.  Every record
    is written as one line ending in a newline, flushed and ``fsync``'d
    before the writer moves on.  A crash (power loss, ``SIGKILL``) can
    therefore lose at most the record being written, leaving a
    truncated final line that :func:`read_jsonl_records` detects (no
    trailing newline / malformed JSON on the last line) and skips
    instead of failing the read.

    On filesystems that refuse ``fsync`` itself (``EINVAL``/``EBADF``
    on some overlay and tmpfs mounts) the writer degrades once to a
    :class:`RuntimeWarning` and keeps appending without fsync rather
    than crashing the checkpoint path.

    Every record carries a ``"crc"`` field: the CRC32 of its canonical
    serialization (:func:`record_crc`), letting readers detect bit rot
    and mid-file corruption that torn-tail logic cannot (readers
    accept crc-less records for backward compatibility).

    An ``OSError`` mid-record — ENOSPC being the canonical case —
    never corrupts the file: the writer remembers the pre-write size,
    truncates the partial record back out and raises a typed
    :class:`CheckpointError`.  The file stays valid JSONL, so a resume
    after space returns picks up from the last durable record.

    *site_prefix* names this writer's failpoint sites
    (``<prefix>.write.enospc`` / ``.write.torn`` / ``.fsync.before`` /
    ``.fsync.after`` — see :mod:`repro.failpoints`), so chaos tests
    can target the campaign checkpoint, the fabric shard checkpoint,
    the audit checkpoint and the service journal independently.
    """

    def __init__(self, path, fsync=True, site_prefix="checkpoint"):
        self.path = str(path)
        self.fsync = fsync
        self.site_prefix = site_prefix
        self.records_written = 0
        _trim_torn_tail(self.path)
        try:
            self._handle = open(self.path, "a")
        except OSError as exc:
            raise CheckpointError(path, f"cannot open for append: {exc}")

    def _tail_position(self):
        """Current end-of-file offset (None when even fstat fails)."""
        try:
            return os.fstat(self._handle.fileno()).st_size
        except OSError:  # pragma: no cover - fd already dead
            return None

    def _repair_to(self, position):
        """Truncate a partially written record back out of the file.

        Runs after an ``OSError`` mid-record (ENOSPC, EIO): whatever
        prefix of the record reached the file is removed so the file
        stays valid JSONL and the *next* successful write appends a
        clean record.  If the truncate itself fails the torn tail is
        left behind — readers tolerate exactly one.
        """
        if position is None:
            return
        try:
            self._handle.seek(position)
            self._handle.truncate()
        except (OSError, ValueError):
            pass

    def _write(self, record):
        record["version"] = CHECKPOINT_VERSION
        try:
            body = json.dumps(record, sort_keys=True)
        except (TypeError, ValueError) as exc:
            raise CheckpointError(self.path, f"cannot write record: {exc}")
        # splice the checksum into the serialized body so the CRC
        # covers exactly the canonical form readers will reconstruct
        line = f'{body[:-1]}, "crc": {record_crc(body)}}}\n'
        prefix = self.site_prefix
        start = self._tail_position()
        try:
            if _failpoints.fire(prefix + ".write.enospc"):
                # the disk fills mid-record: half the bytes land, the
                # write fails, and the repair below truncates them
                self._handle.write(line[: len(line) // 2])
                self._handle.flush()
                raise OSError(
                    errno.ENOSPC, "injected: no space left on device"
                )
            if _failpoints.fire(prefix + ".write.torn"):
                # SIGKILL mid-write: half a record stays on disk and no
                # repair runs (the process would already be gone)
                self._handle.write(line[: len(line) // 2])
                self._handle.flush()
                raise CheckpointError(
                    self.path, f"failpoint {prefix}.write.torn fired"
                )
            self._handle.write(line)
            self._handle.flush()
            if _failpoints.fire(prefix + ".fsync.before"):
                raise OSError(errno.EIO, "injected: error before fsync")
            if self.fsync and not fsync_best_effort(
                self._handle.fileno(), self.path
            ):
                self.fsync = False  # warned once; stop retrying
            if _failpoints.fire(prefix + ".fsync.after"):
                raise OSError(errno.EIO, "injected: error after fsync")
        except OSError as exc:
            # unsynced bytes may or may not have reached the platter;
            # the conservative story is "this record never happened"
            self._repair_to(start)
            raise CheckpointError(self.path, f"cannot write record: {exc}")
        self.records_written += 1

    def close(self):
        try:
            self._handle.close()
        except OSError:
            pass


class CheckpointWriter(JsonlWriter):
    """Appends header/checkpoint/progress records to a JSONL file."""

    def __init__(self, path, fsync=True, site_prefix="checkpoint"):
        super().__init__(path, fsync=fsync, site_prefix=site_prefix)
        self.checkpoints_written = 0

    def write_header(
        self,
        circuit_spec,
        sequence,
        fault_keys,
        ladder,
        node_limit,
        initial_state,
        variable_scheme,
        fallback_frames,
        fingerprint=None,
    ):
        self._write(
            {
                "type": "header",
                "circuit": circuit_spec,
                "sequence": [
                    "".join(str(b) for b in vector) for vector in sequence
                ],
                "fault_keys": [fault_key_to_json(k) for k in fault_keys],
                "ladder": ladder.to_json(),
                "node_limit": node_limit,
                "initial_state": state_to_text(initial_state),
                "variable_scheme": variable_scheme,
                "fallback_frames": fallback_frames,
                "fingerprint": fingerprint,
            }
        )

    def write_checkpoint(
        self,
        frame,
        good_state_3v,
        fault_set,
        rung_indices,
        diffs_3v,
        counters,
        rng_state=None,
        elapsed=None,
    ):
        """Snapshot everything needed to resume after *frame* frames.

        *rung_indices* and *diffs_3v* map ``id(record)`` to the rung
        index / three-valued state diff of each still-live record.
        """
        faults = []
        for record in fault_set:
            faults.append(
                {
                    "state": record.state_to_json(),
                    "rung": rung_indices.get(id(record)),
                    "diff": _diff_to_json(diffs_3v.get(id(record))),
                }
            )
        record = {
            "type": "checkpoint",
            "frame": frame,
            "good_state": state_to_text(good_state_3v),
            "faults": faults,
            "counters": counters,
            "elapsed": elapsed,
        }
        if rng_state is not None:
            record["rng_state"] = rng_state_to_json(rng_state)
        self._write(record)
        self.checkpoints_written += 1

    def write_progress(self, payload):
        record = {"type": "progress"}
        record.update(payload)
        self._write(record)


class Checkpoint:
    """The parsed last checkpoint of a campaign file."""

    def __init__(self, path, header, snapshot):
        self.path = str(path)
        self.header = header
        self.snapshot = snapshot

    # -- header accessors ------------------------------------------------
    @property
    def circuit_spec(self):
        return self.header["circuit"]

    @property
    def sequence(self):
        return [
            tuple(int(c) for c in line) for line in self.header["sequence"]
        ]

    @property
    def fault_keys(self):
        return [fault_key_from_json(k) for k in self.header["fault_keys"]]

    @property
    def node_limit(self):
        return self.header["node_limit"]

    @property
    def variable_scheme(self):
        return self.header["variable_scheme"]

    @property
    def fallback_frames(self):
        return self.header["fallback_frames"]

    @property
    def fingerprint(self):
        """Circuit + fault-universe hash (None for legacy headers)."""
        return self.header.get("fingerprint")

    def ladder_json(self):
        return self.header["ladder"]

    # -- snapshot accessors ----------------------------------------------
    @property
    def frame(self):
        return self.snapshot["frame"]

    @property
    def good_state(self):
        return state_from_text(self.snapshot["good_state"])

    @property
    def counters(self):
        return self.snapshot["counters"]

    @property
    def elapsed(self):
        return self.snapshot.get("elapsed") or 0.0

    def fault_states(self):
        """Per-fault [state, rung, diff] aligned with the header keys."""
        return [
            (
                entry["state"],
                entry["rung"],
                _diff_from_json(entry["diff"]),
            )
            for entry in self.snapshot["faults"]
        ]

    def rng_state(self):
        data = self.snapshot.get("rng_state")
        return None if data is None else rng_state_from_json(data)


def read_jsonl_records(path, expected_version=CHECKPOINT_VERSION,
                       on_corrupt=None):
    """Yield the parsed records of a checkpoint JSONL file.

    A record and its trailing newline are written (and fsync'd) as a
    unit, so a crash mid-write leaves exactly one signature: a *final*
    line with no trailing newline.  Such a line is skipped — the file
    resumes from the previous complete record.

    Everything else — a malformed line anywhere else (or one that
    *does* end in a newline), a version mismatch, a CRC32 mismatch on
    a record that carries one — is corruption, not a torn write.  With
    the default ``on_corrupt=None`` that raises
    :class:`CheckpointError`; passing a callable instead quarantines
    the record — ``on_corrupt({"line": n, "reason": ...})`` is called
    and the read continues, so loaders can skip damage and let the
    caller decide whether the loss is verdict-affecting.

    Records without a ``"crc"`` field (written before checksumming
    existed) are accepted unverified; the field itself is popped, so
    consumers see the same record shape either way.
    """
    if not os.path.exists(path):
        raise CheckpointError(path, "file does not exist")
    with open(path) as handle:
        lines = handle.readlines()
    last_index = len(lines) - 1

    def corrupt(index, reason):
        if on_corrupt is None:
            raise CheckpointError(path, f"line {index + 1}: {reason}")
        on_corrupt({"line": index + 1, "reason": reason})

    for index, line in enumerate(lines):
        stripped = line.strip()
        if not stripped:
            continue
        torn_tail = index == last_index and not line.endswith("\n")
        try:
            record = json.loads(stripped)
        except json.JSONDecodeError as exc:
            if torn_tail:
                return  # torn final write: resume from the prior record
            corrupt(index, str(exc))
            continue
        if not isinstance(record, dict):
            if torn_tail:
                return
            corrupt(index, "record is not a JSON object")
            continue
        crc = record.pop("crc", None)
        if crc is not None:
            body = json.dumps(record, sort_keys=True)
            if record_crc(body) != crc:
                if torn_tail:
                    return  # torn mid-record but still parseable JSON
                corrupt(
                    index,
                    f"crc mismatch (recorded {crc}, "
                    f"computed {record_crc(body)})",
                )
                continue
        version = record.get("version")
        if version != expected_version:
            if torn_tail:
                return
            corrupt(
                index,
                f"unsupported version {version!r} "
                f"(expected {expected_version})",
            )
            continue
        yield record


def sniff_checkpoint_kind(path):
    """``"campaign"`` or ``"fabric"`` from the first record of *path*."""
    for record in read_jsonl_records(path):
        kind = record.get("type")
        if kind == "fabric-header":
            return "fabric"
        return "campaign"
    raise CheckpointError(path, "no records")


def load_checkpoint(path, on_corrupt=None):
    """Parse the header and the *last* checkpoint record of *path*.

    With *on_corrupt* (see :func:`read_jsonl_records`) damaged records
    are quarantined instead of failing the load: a corrupt snapshot
    simply stops being the resume point (the previous good one wins —
    conservative, never wrong), while a corrupt *header* still fails
    the load with "no header record", because resuming without the
    fault universe would be verdict-affecting.
    """
    header = None
    snapshot = None
    for record in read_jsonl_records(path, on_corrupt=on_corrupt):
        kind = record.get("type")
        if kind == "header":
            header = record
        elif kind == "checkpoint":
            snapshot = record
    if header is None:
        raise CheckpointError(path, "no header record")
    if snapshot is None:
        raise CheckpointError(path, "no checkpoint record to resume from")
    if len(snapshot["faults"]) != len(header["fault_keys"]):
        raise CheckpointError(
            path, "checkpoint fault list does not match header fault keys"
        )
    return Checkpoint(path, header, snapshot)


class SignalGuard:
    """Turns SIGINT/SIGTERM into a cooperative stop request.

    The campaign polls :attr:`stop_requested` at frame boundaries;
    when set it writes a final checkpoint and returns a partial
    result instead of dying mid-frame.  A second SIGINT falls through
    to the previous handler (usually KeyboardInterrupt), so a hung
    campaign can still be killed interactively.
    """

    def __init__(self, signals=(signal.SIGINT, signal.SIGTERM)):
        self.signals = signals
        self.stop_requested = None  # signal name once requested
        self._previous = {}
        self._installed = False

    def _handler(self, signum, frame):
        if self.stop_requested is not None:
            # second signal: restore and re-raise the default behaviour
            self.uninstall()
            os.kill(os.getpid(), signum)
            return
        self.stop_requested = signal.Signals(signum).name

    def install(self):
        for sig in self.signals:
            self._previous[sig] = signal.signal(sig, self._handler)
        self._installed = True
        return self

    def uninstall(self):
        if not self._installed:
            return
        for sig, previous in self._previous.items():
            signal.signal(sig, previous)
        self._previous.clear()
        self._installed = False

    def __enter__(self):
        return self.install()

    def __exit__(self, *exc_info):
        self.uninstall()
        return False
