"""Exception taxonomy of the campaign runtime.

Every error the runtime raises derives from :class:`ReproError` and
carries machine-readable context (budget kind, limits, fault keys,
checkpoint paths) so callers — the CLI, a service wrapper, a test —
can react without parsing message strings.

This module is a leaf: it must not import anything from
:mod:`repro`, because low-level packages (the ``.bench`` loader, the
OBDD manager) raise these errors too.
"""


class ReproError(Exception):
    """Base class for all structured errors raised by this package."""

    def context(self):
        """Machine-readable payload describing the error (a dict)."""
        return {}


class BudgetExceeded(ReproError):
    """A resource governor budget was exhausted.

    ``kind`` is one of ``"deadline"``, ``"nodes"``, ``"rss"`` (process
    resident set size over the RSS budget after in-engine pressure
    relief failed to hold it) or ``"fault-frame-nodes"`` /
    ``"fault-frame-events"`` (per-fault frame cost).  ``fault_key`` is
    set when the violation is attributable to
    a single fault, in which case the campaign demotes that fault on
    its degradation ladder instead of stopping.  ``pack`` is set when
    the violation happened inside the word-parallel engine, whose frame
    numbering restarts per pack: ``frame`` is then the 1-based frame
    *within* pack number ``pack`` (0-based).
    """

    def __init__(self, kind, limit, observed, fault_key=None, frame=None,
                 pack=None):
        self.kind = kind
        self.limit = limit
        self.observed = observed
        self.fault_key = fault_key
        self.frame = frame
        self.pack = pack
        where = f" (fault {fault_key})" if fault_key is not None else ""
        if frame is not None and pack is not None:
            at = f" at pack {pack}, frame {frame}"
        elif frame is not None:
            at = f" at frame {frame}"
        else:
            at = ""
        super().__init__(
            f"{kind} budget exceeded{at}{where}: "
            f"observed {observed}, limit {limit}"
        )

    def context(self):
        return {
            "kind": self.kind,
            "limit": self.limit,
            "observed": self.observed,
            "fault_key": self.fault_key,
            "frame": self.frame,
            "pack": self.pack,
        }


class DiskPressureExceeded(BudgetExceeded):
    """Free disk space (or an artifact quota) fell below the hard
    watermark after every relief rung ran.

    Routed exactly like the other budget kinds: the campaign catches
    it at a frame boundary, writes a final (compacted) checkpoint and
    returns a partial result with ``stopped="disk"`` — a clean,
    resumable surrender, never a crash.  Raised only after the relief
    ladder (compaction, checkpoint-interval stretch) failed to bring
    usage back under the watermark.
    """

    def __init__(self, limit, observed, path=None, frame=None):
        super().__init__("disk", limit, observed, frame=frame)
        self.path = None if path is None else str(path)

    def context(self):
        data = super().context()
        data["path"] = self.path
        return data


class CheckpointError(ReproError):
    """A checkpoint file could not be written, read or validated."""

    def __init__(self, path, reason):
        self.path = str(path)
        self.reason = reason
        super().__init__(f"checkpoint {self.path}: {reason}")

    def context(self):
        return {"path": self.path, "reason": self.reason}


class CheckpointMismatch(CheckpointError):
    """A checkpoint belongs to a different circuit / fault universe.

    Checkpoint headers embed a stable fingerprint of the circuit
    structure and the serialized fault keys; resuming against an
    edited circuit (or a different collapse) would silently
    misclassify, so resume refuses instead.  Headers written before
    fingerprints existed carry none and resume with the legacy
    fault-key identity check only.
    """

    def __init__(self, path, expected, found):
        self.expected = expected
        self.found = found
        super().__init__(
            path,
            f"circuit/fault-universe fingerprint mismatch: checkpoint "
            f"was written for {found}, resume target is {expected}",
        )

    def context(self):
        data = super().context()
        data["expected"] = self.expected
        data["found"] = self.found
        return data


class DegradationExhausted(ReproError):
    """A fault fell off the bottom of the degradation ladder.

    The campaign catches this and quarantines the fault; it only
    propagates to callers driving the ladder directly.
    """

    def __init__(self, fault_key, rungs_tried):
        self.fault_key = fault_key
        self.rungs_tried = list(rungs_tried)
        super().__init__(
            f"fault {fault_key} exhausted the degradation ladder "
            f"({' -> '.join(self.rungs_tried)})"
        )

    def context(self):
        return {"fault_key": self.fault_key, "rungs_tried": self.rungs_tried}


class WorkerCrashed(ReproError):
    """A shard-fabric worker process died (or hung) and could not be
    replaced.

    The fabric normally absorbs worker deaths — respawn, retry with
    backoff, bisect poison shards — so this only propagates when the
    pool itself is unusable (e.g. every freshly spawned worker dies
    before reporting ready).
    """

    def __init__(self, worker_id, reason, shard_id=None):
        self.worker_id = worker_id
        self.reason = reason
        self.shard_id = shard_id
        at = f" running shard {shard_id}" if shard_id is not None else ""
        super().__init__(f"worker {worker_id}{at}: {reason}")

    def context(self):
        return {
            "worker_id": self.worker_id,
            "reason": self.reason,
            "shard_id": self.shard_id,
        }


class CircuitFormatError(ReproError):
    """A circuit description (e.g. ``.bench`` text) is ill-formed.

    :class:`repro.circuit.bench.BenchParseError` derives from this so
    loader failures are part of the structured taxonomy while staying a
    ``ValueError`` for backwards compatibility.
    """
