"""Campaign runtime: budgets, checkpoints and graceful degradation.

Leaf modules (:mod:`errors`, :mod:`governor`, :mod:`ladder`) are
imported eagerly.  The campaign driver and checkpoint machinery are
exposed lazily (PEP 562): :mod:`repro.circuit.bench` imports
:mod:`repro.runtime.errors` for its error taxonomy, and an eager import
of :mod:`repro.runtime.campaign` here would close a circular import
through the engines back to :mod:`repro.circuit`.
"""

from repro.runtime.errors import (
    BudgetExceeded,
    CheckpointError,
    CheckpointMismatch,
    CircuitFormatError,
    DegradationExhausted,
    ReproError,
    WorkerCrashed,
)
from repro.runtime.governor import ResourceGovernor
from repro.runtime.memory import RssSampler, parse_size, read_rss_bytes
from repro.runtime.ladder import (
    THREE_VALUED_RUNG,
    DegradationLadder,
    LadderState,
    Rung,
)

_CAMPAIGN_EXPORTS = {
    "Campaign",
    "CampaignResult",
    "run_campaign",
    "resume_campaign",
    "DEFAULT_CHECKPOINT_EVERY",
}
_CHECKPOINT_EXPORTS = {
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "CheckpointWriter",
    "JsonlWriter",
    "SignalGuard",
    "circuit_fingerprint",
    "fsync_best_effort",
    "load_checkpoint",
    "read_jsonl_records",
    "sniff_checkpoint_kind",
    "verify_fingerprint",
    "write_json_atomic",
}
_FABRIC_EXPORTS = {
    "FabricConfig",
    "ShardFabric",
    "load_fabric_checkpoint",
    "resume_sharded_campaign",
    "run_sharded_campaign",
}

__all__ = sorted(
    {
        "ReproError",
        "BudgetExceeded",
        "CheckpointError",
        "CheckpointMismatch",
        "CircuitFormatError",
        "DegradationExhausted",
        "WorkerCrashed",
        "ResourceGovernor",
        "DegradationLadder",
        "LadderState",
        "Rung",
        "THREE_VALUED_RUNG",
        "RssSampler",
        "parse_size",
        "read_rss_bytes",
    }
    | _CAMPAIGN_EXPORTS
    | _CHECKPOINT_EXPORTS
    | _FABRIC_EXPORTS
)


def __getattr__(name):
    if name in _CAMPAIGN_EXPORTS:
        from repro.runtime import campaign

        return getattr(campaign, name)
    if name in _CHECKPOINT_EXPORTS:
        from repro.runtime import checkpoint

        return getattr(checkpoint, name)
    if name in _FABRIC_EXPORTS:
        from repro.runtime import fabric

        return getattr(fabric, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
