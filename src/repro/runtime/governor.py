"""Cooperative resource budgets for long fault-simulation runs.

A :class:`ResourceGovernor` owns four independent budgets:

* **wall-clock deadline** — checked between frames
  (:meth:`check_frame`) and, because a single pathological frame can
  run for minutes, also at OBDD node-allocation granularity via the
  :attr:`~repro.bdd.manager.BddManager.alloc_hook` callback
  (:meth:`note_node`, throttled to every 1024 allocations),
* **total BDD nodes** — cumulative node allocations across every
  manager the campaign opens (sessions are re-opened after fallbacks
  and demotions; the budget spans all of them),
* **per-fault frame cost** — the number of nodes a single fault's
  propagation may allocate within one frame (symbolic rungs) and the
  number of differing signals it may touch (three-valued rung),
* **process RSS** — the resident set size sampled from
  ``/proc/self/statm`` (via :class:`~repro.runtime.memory.RssSampler`,
  throttled to the same allocation stride as the clock).  This is the
  *last line*: the in-engine pressure ladder
  (:mod:`repro.bdd.pressure`) relieves below the budget; the governor
  stops the campaign gracefully — checkpoint intact — when relief
  could not hold the line.

``cache_budget`` rides along as configuration only: the governor does
not police the computed table itself, it hands the value to the
pressure ladder (which evicts) and reports it in accounting.

All checks raise :class:`~repro.runtime.errors.BudgetExceeded`; the
per-fault checks tag the exception with the offending ``fault_key`` so
the campaign can demote just that fault instead of stopping.

The governor is *cooperative*: nothing is preempted, the simulators
simply call in at safe points, which is what keeps a raised budget from
corrupting session state (a :meth:`SymbolicSession.step
<repro.symbolic.fault_sim.SymbolicSession.step>` that raises leaves the
session untouched).
"""

import time as _time

from repro.runtime.errors import BudgetExceeded
from repro.runtime.memory import RssSampler

# check the wall clock only every N node allocations: a monotonic clock
# read per mk() would dominate the BDD package's runtime.
_CLOCK_STRIDE = 1024


class ResourceGovernor:
    """Budget bookkeeping shared by one campaign."""

    def __init__(
        self,
        deadline=None,
        node_budget=None,
        fault_frame_nodes=None,
        fault_frame_events=None,
        rss_budget=None,
        cache_budget=None,
        clock=_time.monotonic,
        rss_sampler=None,
    ):
        if deadline is not None and deadline < 0:
            raise ValueError("deadline must be >= 0 seconds")
        self.deadline = deadline
        self.node_budget = node_budget
        self.fault_frame_nodes = fault_frame_nodes
        self.fault_frame_events = fault_frame_events
        self.rss_budget = rss_budget
        self.cache_budget = cache_budget
        if rss_sampler is None and rss_budget is not None:
            rss_sampler = RssSampler()
        self._rss_sampler = rss_sampler
        self.peak_rss = 0
        self._clock = clock
        self._started = None
        self._elapsed_before = 0.0  # carried over by a resumed campaign
        self.nodes_allocated = 0
        self._since_clock_check = 0
        self.frame = None  # current frame, for error context
        self.pack = None  # current pack of the word-parallel engine

    # ------------------------------------------------------------------
    def start(self, elapsed_before=0.0, nodes_before=0):
        """Begin (or resume) metering; prior consumption carries over."""
        self._started = self._clock()
        self._elapsed_before = elapsed_before
        self.nodes_allocated = nodes_before
        return self

    def elapsed(self):
        """Wall-clock seconds consumed, including pre-resume time."""
        if self._started is None:
            return self._elapsed_before
        return self._elapsed_before + (self._clock() - self._started)

    # ------------------------------------------------------------------
    def check_deadline(self):
        if self.deadline is None:
            return
        elapsed = self.elapsed()
        if elapsed >= self.deadline:
            raise BudgetExceeded(
                "deadline", self.deadline, elapsed, frame=self.frame,
                pack=self.pack,
            )

    def check_frame(self, frame, pack=None):
        """Frame-boundary check; also usable as an engine frame hook.

        The word-parallel engine restarts its frame count per pack and
        passes the 0-based *pack* index along, so a raised budget names
        the absolute (pack, frame) position instead of a frame number
        that repeats every pack.
        """
        self.frame = frame
        self.pack = pack
        self.check_deadline()
        self.check_rss()

    def sample_rss(self):
        """Latest RSS sample in bytes (None without a sampler or off
        Linux); tracks the peak for accounting."""
        if self._rss_sampler is None:
            return None
        rss = self._rss_sampler()
        if rss is not None and rss > self.peak_rss:
            self.peak_rss = rss
        return rss

    def check_rss(self):
        if self.rss_budget is None:
            return
        rss = self.sample_rss()
        if rss is not None and rss > self.rss_budget:
            raise BudgetExceeded(
                "rss", self.rss_budget, rss, frame=self.frame,
                pack=self.pack,
            )

    def note_node(self):
        """Node-allocation hook for :class:`BddManager.alloc_hook`."""
        self.nodes_allocated += 1
        if (
            self.node_budget is not None
            and self.nodes_allocated > self.node_budget
        ):
            raise BudgetExceeded(
                "nodes", self.node_budget, self.nodes_allocated,
                frame=self.frame, pack=self.pack,
            )
        self._since_clock_check += 1
        if self._since_clock_check >= _CLOCK_STRIDE:
            self._since_clock_check = 0
            self.check_deadline()
            self.check_rss()

    def check_fault_frame_nodes(self, record, nodes):
        """Per-fault frame-cost hook for symbolic sessions."""
        if (
            self.fault_frame_nodes is not None
            and nodes > self.fault_frame_nodes
        ):
            raise BudgetExceeded(
                "fault-frame-nodes", self.fault_frame_nodes, nodes,
                fault_key=record.fault.key(), frame=self.frame,
            )

    def check_fault_frame_events(self, record, events):
        """Per-fault frame-cost check for the three-valued rung."""
        if (
            self.fault_frame_events is not None
            and events > self.fault_frame_events
        ):
            raise BudgetExceeded(
                "fault-frame-events", self.fault_frame_events, events,
                fault_key=record.fault.key(), frame=self.frame,
            )

    # ------------------------------------------------------------------
    def _wants_alloc_hook(self):
        """Should :meth:`attach_manager` install :meth:`note_node`?

        Subclasses widen this: the fabric's :class:`WorkerGovernor`
        always attaches so heartbeats keep flowing during long frames
        even when no budgets are armed.
        """
        return (
            self.node_budget is not None
            or self.deadline is not None
            or self.rss_budget is not None
        )

    def attach_manager(self, manager):
        """Meter *manager*'s node allocations (and the clock and RSS)
        via mk().

        Chains with any hook already installed (the ``bdd.alloc``
        failpoint arms one at manager construction) instead of
        overwriting it.
        """
        if not self._wants_alloc_hook():
            return
        previous = manager.alloc_hook
        if previous is None:
            manager.alloc_hook = self.note_node
        else:
            note_node = self.note_node

            def chained(_previous=previous, _note=note_node):
                _previous()
                _note()

            manager.alloc_hook = chained

    def accounting(self):
        """Budget consumption snapshot for results and checkpoints."""
        return {
            "deadline": self.deadline,
            "elapsed": round(self.elapsed(), 6),
            "node_budget": self.node_budget,
            "nodes_allocated": self.nodes_allocated,
            "fault_frame_nodes": self.fault_frame_nodes,
            "fault_frame_events": self.fault_frame_events,
            "rss_budget": self.rss_budget,
            "cache_budget": self.cache_budget,
            "peak_rss": self.peak_rss,
        }

    def __repr__(self):
        return (
            f"ResourceGovernor(deadline={self.deadline}, "
            f"node_budget={self.node_budget}, "
            f"fault_frame_nodes={self.fault_frame_nodes})"
        )
