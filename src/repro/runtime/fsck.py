"""Offline integrity checking for every durable JSONL artifact.

``python -m repro fsck <path>`` validates a campaign checkpoint, a
fabric shard checkpoint, an audit checkpoint or a service job journal
— auto-detected from the first intact record — without loading the
circuit or replaying any state.  It answers the operator's question
after a crash, a disk incident or a suspicious resume: *is this file
damaged, and does the damage matter?*

Checked, in layers:

* **line integrity** — JSON validity, record shape, the ``version``
  field and each record's CRC32 (:func:`~repro.runtime.checkpoint.
  record_crc`); records written before checksumming carry no ``crc``
  and are accepted unverified (counted in ``unchecksummed``),
* **torn tail** — a final line without a trailing newline is the
  signature of a crash mid-append.  Readers skip it by design, so it
  is reported as expected crash damage, *not* corruption,
* **structure** — kind-specific invariants: a header record exists
  and precedes the data, per-fault lists match the header's fault
  universe, checkpoint frames never decrease, every journaled job
  transition is legal under the service state machine, shard records
  carry as many states as indices,
* **fingerprint presence** — headers are expected to embed a circuit
  fingerprint; its absence (legacy files) is a warning.

The verdict mirrors the resume loaders exactly: ``corrupt`` entries
are what :func:`~repro.runtime.checkpoint.read_jsonl_records` would
quarantine, ``problems`` are what a resume would refuse or a service
replay would mishandle.  Exit status (via the CLI): 0 when clean
(warnings allowed), 4 when anything is corrupt or structurally wrong.
The chaos suites run fsck after every injected failure: a failpoint
may cost work, but it must never leave a file fsck rejects.
"""

import json
import os

from repro.runtime.checkpoint import read_jsonl_records
from repro.runtime.errors import CheckpointError

#: first-record type -> artifact kind
_KIND_OF_TYPE = {
    "header": "campaign",
    "checkpoint": "campaign",
    "progress": "campaign",
    "fabric-header": "fabric",
    "shard": "fabric",
    "audit-header": "audit",
    "audit-finding": "audit",
    "service": "journal",
    "job": "journal",
    "job-deleted": "journal",
    "snapshot": "journal",
}


def _has_torn_tail(path):
    """True when the final line lacks its newline (crash mid-append)."""
    try:
        with open(path, "rb") as handle:
            handle.seek(0, os.SEEK_END)
            size = handle.tell()
            if size == 0:
                return False
            handle.seek(size - 1)
            return handle.read(1) != b"\n"
    except OSError:
        return False


def _check_campaign(records, report):
    header = None
    last_frame = None
    for index, record in records:
        kind = record.get("type")
        if kind == "header":
            if header is not None:
                report.problem(index, "duplicate header record")
            header = record
            if record.get("fingerprint") is None:
                report.warn(index, "header has no circuit fingerprint")
        elif kind == "checkpoint":
            if header is None:
                report.problem(index, "checkpoint record before header")
            elif len(record.get("faults") or ()) != len(
                header.get("fault_keys") or ()
            ):
                report.problem(
                    index,
                    "checkpoint fault list does not match header "
                    f"({len(record.get('faults') or ())} vs "
                    f"{len(header.get('fault_keys') or ())} faults)",
                )
            frame = record.get("frame")
            if last_frame is not None and isinstance(frame, int) \
                    and frame < last_frame:
                report.problem(
                    index,
                    f"checkpoint frame went backwards ({last_frame} -> "
                    f"{frame})",
                )
            if isinstance(frame, int):
                last_frame = frame
        elif kind != "progress":
            report.problem(index, f"unknown record type {kind!r}")
    if header is None:
        report.problem(None, "no header record (resume would refuse)")
    elif last_frame is None:
        report.warn(None, "no checkpoint record (nothing to resume from)")


def _check_fabric(records, report):
    header = None
    for index, record in records:
        kind = record.get("type")
        if kind == "fabric-header":
            if header is not None:
                report.problem(index, "duplicate fabric-header record")
            header = record
            if record.get("fingerprint") is None:
                report.warn(index, "header has no circuit fingerprint")
        elif kind == "shard":
            if header is None:
                report.problem(index, "shard record before fabric-header")
            indices = record.get("indices") or ()
            states = record.get("states") or ()
            if len(indices) != len(states):
                report.problem(
                    index,
                    f"shard carries {len(states)} states for "
                    f"{len(indices)} fault indices",
                )
            universe = len(header.get("fault_keys") or ()) if header else None
            if universe is not None and any(
                not isinstance(i, int) or not 0 <= i < universe
                for i in indices
            ):
                report.problem(
                    index,
                    "shard indices outside the header's fault universe",
                )
        else:
            report.problem(index, f"unknown record type {kind!r}")
    if header is None:
        report.problem(None, "no fabric-header record (resume would refuse)")


def _check_audit(records, report):
    header = None
    for index, record in records:
        kind = record.get("type")
        if kind == "audit-header":
            if header is not None:
                report.problem(index, "duplicate audit-header record")
            header = record
            if record.get("fingerprint") is None:
                report.warn(index, "header has no circuit fingerprint")
        elif kind == "audit-finding":
            if header is None:
                report.problem(index, "finding record before audit-header")
            if not isinstance(record.get("finding"), dict):
                report.problem(index, "finding record has no finding body")
        else:
            report.problem(index, f"unknown record type {kind!r}")
    if header is None:
        report.problem(None, "no audit-header record (resume would refuse)")


def _check_journal(records, report):
    # the authoritative transition table, not a copy: fsck must agree
    # with what the live service enforces
    from repro.service.journal import _TRANSITIONS, STATES

    last_state = {}
    for index, record in records:
        kind = record.get("type")
        if kind == "service":
            continue
        if kind == "snapshot":
            # a compaction point: replay replaces its state with the
            # snapshot, so the transition checker resets to its views
            jobs = record.get("jobs")
            if not isinstance(jobs, dict):
                report.problem(index, "snapshot record without jobs map")
                continue
            last_state = {}
            for job_id, view in jobs.items():
                state = (view or {}).get("state")
                if state not in STATES:
                    report.problem(
                        index,
                        f"snapshot job {job_id}: unknown state {state!r}",
                    )
                    continue
                last_state[job_id] = state
            continue
        if kind == "job-deleted":
            job_id = record.get("id")
            if not isinstance(job_id, str) or not job_id:
                report.problem(index, "job-deleted record without an id")
                continue
            last_state.pop(job_id, None)
            continue
        if kind != "job":
            report.problem(index, f"unknown record type {kind!r}")
            continue
        job_id = record.get("id")
        state = record.get("state")
        if not isinstance(job_id, str) or not job_id:
            report.problem(index, "job record without an id")
            continue
        if state not in STATES:
            report.problem(
                index, f"job {job_id}: unknown state {state!r}"
            )
            continue
        old = last_state.get(job_id)
        if state not in _TRANSITIONS.get(old, ()):
            report.problem(
                index,
                f"job {job_id}: illegal transition {old!r} -> {state!r}",
            )
        last_state[job_id] = state
        if state == "submitted" and old is None \
                and not isinstance(record.get("spec"), dict):
            report.problem(
                index, f"job {job_id}: submitted record carries no spec"
            )


_CHECKERS = {
    "campaign": _check_campaign,
    "fabric": _check_fabric,
    "audit": _check_audit,
    "journal": _check_journal,
}


class FsckReport:
    """The structured outcome of one fsck run."""

    def __init__(self, path):
        self.path = str(path)
        self.kind = None
        self.records = 0
        self.unchecksummed = 0
        self.torn_tail = False
        self.corrupt = []  # {"line", "reason"} from the CRC/JSON layer
        self.problems = []  # structural findings a resume would hit
        self.warnings = []  # legacy/benign observations
        self.repaired = []  # actions --repair performed on this file

    def problem(self, index, reason):
        self.problems.append(
            {"line": None if index is None else index, "reason": reason}
        )

    def warn(self, index, reason):
        self.warnings.append(
            {"line": None if index is None else index, "reason": reason}
        )

    @property
    def ok(self):
        """Clean (warnings and an expected torn tail are allowed)."""
        return not self.corrupt and not self.problems

    def to_json(self):
        return {
            "path": self.path,
            "kind": self.kind,
            "ok": self.ok,
            "records": self.records,
            "unchecksummed": self.unchecksummed,
            "torn_tail": self.torn_tail,
            "corrupt": list(self.corrupt),
            "problems": list(self.problems),
            "warnings": list(self.warnings),
            "repaired": list(self.repaired),
        }

    def lines(self):
        """Human-readable report lines (the CLI prints these)."""
        verdict = "clean" if self.ok else "CORRUPT"
        yield (
            f"{self.path}: {self.kind or 'unknown'} — {verdict} "
            f"({self.records} records)"
        )
        if self.torn_tail:
            yield (
                "  torn tail: final record truncated mid-append "
                "(expected crash damage; readers skip it)"
            )
        if self.unchecksummed:
            yield (
                f"  {self.unchecksummed} record(s) predate CRC "
                "checksumming (accepted unverified)"
            )
        for entry in self.corrupt:
            yield f"  corrupt line {entry['line']}: {entry['reason']}"
        for entry in self.problems:
            where = "" if entry["line"] is None else f" line {entry['line']}:"
            yield f"  problem{where} {entry['reason']}"
        for entry in self.warnings:
            where = "" if entry["line"] is None else f" line {entry['line']}:"
            yield f"  warning{where} {entry['reason']}"
        for action in self.repaired:
            yield f"  repaired: {action}"


def _try_bench(path, report):
    """Recognize and validate a whole-file bench JSON document.

    Bench exports (``repro bench`` -> ``BENCH_<label>.json``) are the
    one non-JSONL artifact fsck knows: a single JSON object carrying
    ``bench_version``.  Returns True when the file is one (valid or
    not — schema violations land in ``report.problems``).
    """
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, ValueError):
        return False
    if not isinstance(doc, dict) or "bench_version" not in doc:
        return False
    report.kind = "bench"
    report.records = 1
    from repro.obs.bench import BenchSchemaError, validate_bench_json

    try:
        validate_bench_json(doc)
    except BenchSchemaError as exc:
        report.problem(None, str(exc))
    return True


def fsck_file(path):
    """Validate one artifact; returns an :class:`FsckReport`.

    Raises :class:`~repro.runtime.errors.CheckpointError` only when
    the file cannot be examined at all (missing, unreadable, or not
    recognizable as any known artifact).
    """
    report = FsckReport(path)
    if _try_bench(path, report):
        return report
    report.torn_tail = _has_torn_tail(path)
    intact = []
    raw_lines = {}
    for record in read_jsonl_records(
        path, on_corrupt=report.corrupt.append
    ):
        intact.append(record)
    report.records = len(intact)
    # the reader popped each record's crc; recover which lines carried
    # one by rescanning raw lines (cheap: the file is already cached)
    try:
        with open(path) as handle:
            for line_no, line in enumerate(handle, 1):
                raw_lines[line_no] = line
    except OSError as exc:  # pragma: no cover - raced deletion
        raise CheckpointError(path, f"cannot read: {exc}")
    report.unchecksummed = sum(
        1
        for line in raw_lines.values()
        if line.endswith("\n") and line.strip()
        and '"crc"' not in line
    )
    if not intact:
        if report.corrupt or report.torn_tail:
            report.problem(None, "no intact records survive")
            return report
        raise CheckpointError(path, "no records")
    kind = _KIND_OF_TYPE.get(intact[0].get("type"))
    if kind is None:
        raise CheckpointError(
            path,
            f"unrecognized artifact (first record type "
            f"{intact[0].get('type')!r})",
        )
    report.kind = kind
    # line numbers of intact records are approximate once corruption
    # skews the count; enumerate() positions are still monotonic and
    # good enough to locate a structural problem
    _CHECKERS[kind](
        list(enumerate(intact, 1)), report
    )
    return report


def repair_file(path):
    """Repair tail damage in place; returns the post-repair report.

    Handles exactly the two damage classes a crash legitimately
    produces: a torn final line (truncated) and CRC-failing records
    (dropped).  Every removed line is appended byte-for-byte to a
    ``<path>.quarantine`` sidecar *before* the file is atomically
    rewritten, so no bytes are ever destroyed — a crash between the
    two steps leaves the damaged original plus a sidecar copy.

    Structural damage — a missing header, an illegal transition, a
    fault list that does not match its header — cannot be repaired by
    dropping lines; attempting it would launder a deeper problem into
    a file resume then trusts.  Such files raise
    :class:`~repro.runtime.errors.CheckpointError` untouched.
    """
    report = fsck_file(path)
    if report.kind == "bench":
        raise CheckpointError(
            path, "bench JSON is not line-structured; --repair "
                  "cannot help (re-run the bench instead)"
        )
    if report.problems:
        reasons = "; ".join(
            entry["reason"] for entry in report.problems[:3]
        )
        raise CheckpointError(
            path,
            f"structural damage ({reasons}); --repair only removes "
            "CRC-corrupt records and torn tails — restore from a "
            "backup or resume an earlier checkpoint",
        )
    if not report.corrupt and not report.torn_tail:
        return report
    with open(path, "rb") as handle:
        raw = handle.readlines()
    bad = {entry["line"] for entry in report.corrupt}
    torn = bool(raw) and not raw[-1].endswith(b"\n")
    kept, quarantined = [], []
    for line_no, line in enumerate(raw, 1):
        if line_no in bad or (torn and line_no == len(raw)):
            quarantined.append((line_no, line))
        else:
            kept.append(line)
    sidecar = path + ".quarantine"
    with open(sidecar, "ab") as handle:
        for _line_no, line in quarantined:
            handle.write(line if line.endswith(b"\n") else line + b"\n")
        handle.flush()
        os.fsync(handle.fileno())
    import tempfile

    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.writelines(kept)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    actions = []
    if torn:
        actions.append(
            f"truncated torn final line {len(raw)} "
            f"(saved to {os.path.basename(sidecar)})"
        )
    if bad:
        lines = ", ".join(str(n) for n in sorted(bad))
        actions.append(
            f"dropped CRC-corrupt line(s) {lines} "
            f"(saved to {os.path.basename(sidecar)})"
        )
    fresh = fsck_file(path)
    fresh.repaired = actions
    return fresh


def fsck_paths(paths, repair=False):
    """fsck every path; returns (reports, exit_code) — 0 clean, 4 not.

    With ``repair=True`` each path goes through :func:`repair_file`
    first; the returned reports describe the post-repair state.
    """
    reports = [
        repair_file(path) if repair else fsck_file(path)
        for path in paths
    ]
    return reports, (0 if all(r.ok for r in reports) else 4)
