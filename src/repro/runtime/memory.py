"""Process-memory introspection for RSS-aware budgets.

A pure-Python BDD package is memory-bound long before it is CPU-bound:
the node store, the unique table and the computed table all grow with
the OBDDs, and nothing in the paper's 30,000-node space limit sees the
actual process footprint.  This module supplies the one primitive the
pressure ladder and the governor need — the current resident set size —
without any dependency beyond the standard library.

On Linux the value comes from one short read of ``/proc/self/statm``
(field 2, resident pages, times the page size).  Elsewhere the
``resource`` module's peak RSS is used as a monotone stand-in; when even
that is unavailable the reader returns None and every RSS-based feature
degrades to inert.
"""

import os
import sys

_STATM_PATH = "/proc/self/statm"

_PAGE_SIZE = 4096
try:
    _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
except (AttributeError, OSError, ValueError):  # pragma: no cover
    pass


def read_rss_bytes(path=_STATM_PATH):
    """Current resident set size in bytes, or None when unavailable.

    The fallback (``getrusage`` peak RSS) only ever grows, which is
    still a usable budget trigger: a budget crossed by the peak has
    certainly been crossed by the current value at some point.
    """
    try:
        with open(path, "rb") as handle:
            fields = handle.read().split()
        return int(fields[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        pass
    try:  # pragma: no cover - non-Linux fallback
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is kilobytes on Linux, bytes on macOS
        scale = 1 if sys.platform == "darwin" else 1024
        return int(peak) * scale
    except Exception:  # pragma: no cover - no resource module at all
        return None


class _Unavailable:
    pass


_UNAVAILABLE = _Unavailable()


class RssSampler:
    """Throttled, cached RSS sampler for hot paths.

    Reading ``/proc`` is cheap but not free, and the governor's
    node-allocation hook may consult the sampler thousands of times per
    frame.  The sampler re-reads the kernel value only every *refresh*
    calls and serves the cached value in between; it also remembers the
    peak it has seen (``peak``) for accounting.  A reader that returns
    None on first use marks the sampler unavailable for good, so
    platforms without ``/proc`` pay one failed read, not one per call.
    """

    def __init__(self, refresh=16, read=read_rss_bytes):
        if refresh < 1:
            raise ValueError("refresh must be >= 1")
        self.refresh = refresh
        self._read = read
        self._calls = 0
        self._value = None
        self.peak = 0

    def __call__(self):
        if self._value is _UNAVAILABLE:
            return None
        if self._value is None or self._calls >= self.refresh:
            self._calls = 0
            value = self._read()
            if value is None and self._value is None:
                self._value = _UNAVAILABLE
                return None
            if value is not None:
                self._value = value
                if value > self.peak:
                    self.peak = value
        self._calls += 1
        return self._value


_SIZE_SUFFIXES = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30, "t": 1 << 40}


def parse_size(text):
    """Parse a human size string (``512M``, ``2g``, ``1048576``) to bytes.

    Used by the CLI's ``--rss-budget`` / ``--worker-rss-cap`` flags.
    Accepts a bare number (bytes), an optional one-letter binary suffix
    (K/M/G/T, case-insensitive) and an optional trailing ``b``/``iB``.
    """
    if isinstance(text, (int, float)):
        return int(text)
    raw = str(text).strip().lower()
    for tail in ("ib", "b"):
        if raw.endswith(tail) and len(raw) > len(tail):
            raw = raw[: -len(tail)]
            break
    scale = 1
    if raw and raw[-1] in _SIZE_SUFFIXES:
        scale = _SIZE_SUFFIXES[raw[-1]]
        raw = raw[:-1]
    try:
        return int(float(raw) * scale)
    except ValueError:
        raise ValueError(
            f"unparsable size {text!r} (expected e.g. 512M, 2G, 1048576)"
        ) from None
