"""The resilient campaign driver.

:func:`run_campaign` wraps the whole fault-simulation flow — the
``ID_X-red`` pre-pass, the word-parallel three-valued pre-pass and the
symbolic strategies — behind one driver that composes

* a :class:`~repro.runtime.governor.ResourceGovernor` (wall-clock
  deadline, total-node and per-fault frame budgets),
* between-frame checkpoints plus ``SIGINT``/``SIGTERM`` handling
  (:mod:`repro.runtime.checkpoint`), and
* the per-fault :class:`~repro.runtime.ladder.DegradationLadder`.

Faults live in one *group* per ladder rung.  Symbolic groups run a
:class:`~repro.symbolic.fault_sim.SymbolicSession` each (own OBDD
manager, own node limit); the bottom ``3v`` group runs the serial
three-valued engine.  All groups advance in lockstep, one test vector
per iteration, against a shared conservative three-valued good-machine
trajectory.  When a session raises

* :class:`SpaceLimitExceeded` attributable to a single fault — that
  fault is demoted one rung (or quarantined off the bottom),
* :class:`SpaceLimitExceeded` in the fault-free simulation — the whole
  group falls back to three-valued frames for a few vectors and then
  re-opens, exactly like the paper's hybrid simulator,
* :class:`BudgetExceeded` without a fault key (deadline / total
  nodes) — the frame is *completed* three-valued for the remaining
  groups (so every fault sits on the same frame boundary), a final
  checkpoint is written and a partial :class:`CampaignResult` is
  returned.

A step that raises never mutates its session, so every recovery path
resumes from consistent state.  Any fallback, demotion or resume makes
the classification conservative: the result is flagged
``exact=False``.

Below the node-limit boundary the campaign can additionally arm the
in-engine **pressure ladder** (:mod:`repro.bdd.pressure`): every
symbolic session gets a :class:`~repro.bdd.pressure.PressureMonitor`
that evicts the computed table, garbage-collects and (optionally)
reorder-rescues *before* any of the surrender paths above fire.  Those
relief rungs are semantics-preserving, so they never affect
``exact``; a pressure *surrender*
(:class:`~repro.bdd.errors.MemoryPressureExceeded`) flows through the
regular ``SpaceLimitExceeded`` handling.  Pressure activity is
aggregated into :attr:`CampaignResult.pressure` and the checkpoint
counters.
"""

import time
import warnings

from repro import failpoints as _failpoints
from repro.bdd.errors import MemoryPressureExceeded, SpaceLimitExceeded
from repro.bdd.pressure import PressureConfig
from repro.engines.algebra import THREE_VALUED
from repro.engines.evaluate import next_state_of, simulate_frame
from repro.engines.parallel_fault_sim import fault_simulate_3v_parallel
from repro.engines.propagate import propagate_fault
from repro.engines.serial_fault_sim import _check_sot_detection
from repro.faults.status import BY_3V, QUARANTINED, FaultSet
from repro.logic import threeval
from repro.obs.tracer import NULL_TRACER
from repro.runtime.checkpoint import (
    CheckpointWriter,
    circuit_fingerprint,
    load_checkpoint,
    verify_fingerprint,
)
from repro.runtime.disk import (
    LEVEL_HARD,
    LEVEL_OK,
    DiskConfig,
    DiskGovernor,
    compact_checkpoint,
)
from repro.runtime.errors import (
    BudgetExceeded,
    CheckpointError,
    DegradationExhausted,
)
from repro.runtime.governor import ResourceGovernor
from repro.runtime.ladder import DegradationLadder, LadderState
from repro.symbolic.fault_sim import SymbolicSession
from repro.symbolic.hybrid import (
    _GC_RETRY_FRACTION,
    DEFAULT_FALLBACK_FRAMES,
    DEFAULT_NODE_LIMIT,
    HybridFaultSimResult,
)
from repro.xred.idxred import eliminate_x_redundant

DEFAULT_CHECKPOINT_EVERY = 25

COMPLETED = "completed"

#: BDD manager counters aggregated across sessions (see
#: :meth:`repro.bdd.manager.BddManager.stats`); gauges (``num_nodes``,
#: ``cache_size``) are summed over live sessions only and
#: ``peak_nodes`` is maxed.
_BDD_COUNTER_KEYS = (
    "ite_calls",
    "nodes_created",
    "cache_hits",
    "cache_misses",
    "cache_evictions",
    "entries_evicted",
    "gc_runs",
)


class CampaignResult(HybridFaultSimResult):
    """A :class:`HybridFaultSimResult` plus budget / degradation /
    checkpoint accounting."""

    def __init__(
        self,
        fault_set,
        strategy_name,
        frames_total,
        frames_symbolic,
        frames_three_valued,
        fallbacks,
        gc_runs,
        peak_nodes,
        demotions,
        demotion_log,
        quarantined,
        checkpoints_written,
        checkpoint_path,
        resumed_from,
        stopped,
        budget,
        ladder_names,
        rung_population,
        fabric=None,
        pressure=None,
        disk=None,
    ):
        super().__init__(
            fault_set,
            strategy_name,
            frames_total,
            frames_symbolic,
            frames_three_valued,
            fallbacks,
            gc_runs,
            peak_nodes,
        )
        self.demotions = demotions
        self.demotion_log = demotion_log
        self.quarantined = quarantined
        self.checkpoints_written = checkpoints_written
        self.checkpoint_path = checkpoint_path
        self.resumed_from = resumed_from
        self.stopped = stopped
        self.budget = budget
        self.ladder = ladder_names
        self.rung_population = rung_population
        #: shard-fabric accounting dict, None for single-process runs
        self.fabric = fabric
        #: :class:`repro.audit.AuditReport` of the post-campaign
        #: witness-replay audit, None when no audit ran (class default
        #: so fabric-merged results carry it too)
        self.audit = None
        #: memory-pressure accounting dict (events, cache_evictions,
        #: gc_runs, reorder_rescues, rss_surrenders, peak_rss, log),
        #: None when no pressure ladder was armed and nothing fired.
        #: The relief rungs are semantics-preserving, so this never
        #: influences :attr:`exact` — only surrenders do, and those
        #: already show up as fallbacks/demotions.
        self.pressure = pressure
        #: disk-pressure accounting dict (usage, watermark crossings,
        #: compactions, reclaimed bytes, interval stretches), None when
        #: no disk budget was armed.  Like memory pressure, the relief
        #: rungs are semantics-preserving and never influence
        #: :attr:`exact` — only a ``stopped="disk"`` surrender stops
        #: the run early, cleanly checkpointed.
        self.disk = disk

    @property
    def exact(self):
        """True only for an uninterrupted, undegraded, complete run."""
        return (
            self.stopped == COMPLETED
            and self.fallbacks == 0
            and self.demotions == 0
            and not self.quarantined
            and self.resumed_from is None
            and self.frames_three_valued == 0
        )

    def demotion_reasons(self):
        """Demotions grouped by why: space / pressure / budget.

        Entries predating reason tracking count as ``unattributed``;
        demotions whose log entries were lost (e.g. a fabric resume,
        which restores counts but not logs) count as ``unrecorded`` so
        the breakdown always sums to :attr:`demotions`.
        """
        reasons = {}
        for entry in self.demotion_log:
            reason = entry[4] if len(entry) > 4 and entry[4] else None
            reason = reason or "unattributed"
            reasons[reason] = reasons.get(reason, 0) + 1
        recorded = sum(reasons.values())
        if recorded < self.demotions:
            reasons["unrecorded"] = self.demotions - recorded
        return dict(sorted(reasons.items()))

    def runtime_summary(self):
        """Accounting dict for reports and JSON export."""
        summary = {
            "stopped": self.stopped,
            "frames_total": self.frames_total,
            "frames_symbolic": self.frames_symbolic,
            "frames_three_valued": self.frames_three_valued,
            "fallbacks": self.fallbacks,
            "gc_runs": self.gc_runs,
            "demotions": self.demotions,
            "demotion_reasons": self.demotion_reasons(),
            "quarantined": len(self.quarantined),
            "checkpoints_written": self.checkpoints_written,
            "checkpoint_path": self.checkpoint_path,
            "resumed_from": self.resumed_from,
            "peak_nodes": self.peak_nodes,
            "exact": self.exact,
            "ladder": self.ladder,
            "rung_population": self.rung_population,
            "budget": self.budget,
        }
        if self.fabric is not None:
            summary["fabric"] = self.fabric
        if self.pressure is not None:
            summary["pressure"] = self.pressure
        if self.disk is not None:
            summary["disk"] = self.disk
        if self.audit is not None:
            summary["audit"] = self.audit.summary()
        return summary

    def __repr__(self):
        counts = self.fault_set.counts()
        flag = "exact" if self.exact else "conservative"
        return (
            f"CampaignResult({self.strategy}, "
            f"{counts['detected']}/{counts['total']} detected, "
            f"{self.stopped} after {self.frames_total} frames, {flag})"
        )


class _Group:
    """The faults currently on one ladder rung.

    A symbolic group is either *running* (``session`` holds the
    records) or in a three-valued *interlude* after a whole-group
    space-limit fallback (``records``/``diffs`` hold them until the
    interlude expires and a fresh session re-opens).  The bottom
    ``3v`` group only ever uses ``records``/``diffs``.
    """

    def __init__(self, rung_index, rung):
        self.rung_index = rung_index
        self.rung = rung
        self.session = None
        self.records = {}  # id(record) -> record (outside a session)
        self.diffs = {}  # id(record) -> {dff: 3v value} vs campaign state
        self.interlude_left = 0

    def live_count(self):
        if self.session is not None:
            return len(self.session.live_records())
        return len(self.records)


class Campaign:
    """One resilient fault-simulation campaign (see module docstring)."""

    def __init__(
        self,
        compiled,
        sequence,
        fault_set,
        strategy="MOT",
        ladder=None,
        node_limit=DEFAULT_NODE_LIMIT,
        governor=None,
        checkpoint_path=None,
        checkpoint_every=DEFAULT_CHECKPOINT_EVERY,
        fallback_frames=DEFAULT_FALLBACK_FRAMES,
        initial_state=None,
        variable_scheme="interleaved",
        progress_hook=None,
        rng=None,
        signal_guard=None,
        circuit_spec=None,
        xred=True,
        pre_pass_3v=True,
        pressure=None,
        disk=None,
        tracer=None,
        metrics=None,
    ):
        if fallback_frames < 1:
            raise ValueError("fallback_frames must be at least 1")
        if isinstance(fault_set, (list, tuple)):
            fault_set = FaultSet(fault_set)
        if ladder is None:
            ladder = DegradationLadder.from_strategy(strategy)
        elif not isinstance(ladder, DegradationLadder):
            ladder = DegradationLadder(ladder)
        self.compiled = compiled
        self.sequence = [tuple(v) for v in sequence]
        self.fault_set = fault_set
        self.ladder = ladder
        self.node_limit = node_limit
        self.governor = governor or ResourceGovernor()
        self.checkpoint_every = max(int(checkpoint_every), 1)
        self.fallback_frames = fallback_frames
        self.variable_scheme = variable_scheme
        self.progress_hook = progress_hook
        self.rng = rng
        self.signal_guard = signal_guard
        self.circuit_spec = circuit_spec or compiled.circuit.name
        self.xred = xred
        self.pre_pass_3v = pre_pass_3v

        # observability: a live tracer and/or metrics registry turns on
        # span/event emission, opt-in BDD stat counting on every
        # session manager, and per-fault effort accounting.  With both
        # absent the campaign holds NULL_TRACER and every instrumented
        # site reduces to an attribute check.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self._observe = self.tracer.enabled or metrics is not None
        # fault key -> [symbolic frames, three-valued frames, nodes]
        self._fault_effort = {}
        # BDD stats folded out of discarded sessions; live sessions are
        # summed on top at sample time
        self._bdd_base = {}
        self._bdd_peak = 2
        self._root_span = None
        # counter values at run() start: the trace summary reports
        # this-run deltas so a resumed campaign still reconciles
        # exactly against its own trace events
        self._trace_base = {}

        # memory-pressure policy: an explicit PressureConfig (or its
        # JSON dict, as shipped across the shard fabric) wins; absent
        # one, a governor carrying rss/cache budgets arms a default
        # ladder so --rss-budget alone activates in-engine relief
        if isinstance(pressure, dict):
            pressure = PressureConfig.from_json(pressure)
        if pressure is None and (
            self.governor.rss_budget is not None
            or self.governor.cache_budget is not None
        ):
            pressure = PressureConfig(
                rss_budget=self.governor.rss_budget,
                cache_budget=self.governor.cache_budget,
            )
        self.pressure = pressure
        # disk-pressure policy: a DiskConfig (or its JSON dict) arms
        # the disk governor over this campaign's own artifacts — the
        # checkpoint file is the one that grows without bound.  The
        # relief ladder (compact -> stretch the checkpoint interval ->
        # checkpointed surrender) runs at frame boundaries, the same
        # safe points the resource governor checks.
        if isinstance(disk, dict):
            disk = DiskConfig(
                budget=disk.get("budget"),
                free_floor=disk.get("free_floor"),
                soft=disk.get("soft", 0.8),
            )
        self._disk = None
        if disk is not None and disk.enabled:
            paths = [checkpoint_path] if checkpoint_path else []
            self._disk = DiskGovernor(disk, paths=paths)
        self._base_checkpoint_every = self.checkpoint_every
        self.pressure_events = 0
        self.cache_evictions = 0
        self.pressure_gc_runs = 0
        self.reorder_rescues = 0
        self.rss_surrenders = 0
        self.pressure_log = []  # capped event dicts, for accounting
        self._event_peak_rss = 0  # highest RSS reported by any monitor

        if initial_state is None:
            initial_state = [threeval.X] * compiled.num_dffs
        self.initial_state = list(initial_state)
        self.good_3v = list(initial_state)

        self.ladder_state = LadderState(ladder)
        self.groups = [_Group(i, rung) for i, rung in enumerate(ladder.rungs)]
        self._record_of = {r.fault.key(): r for r in fault_set}

        self.frame = 0
        self.frames_symbolic = 0
        self.frames_three_valued = 0
        self.fallbacks = 0
        self.gc_runs = 0
        self.peak_nodes = 2
        self.quarantined = []  # fault keys
        self.resumed_from = None
        self.stopped = None
        self._resume_elapsed = 0.0

        self._writer = (
            CheckpointWriter(checkpoint_path) if checkpoint_path else None
        )
        self._attached = False  # faults distributed onto the ladder

    # ------------------------------------------------------------------
    # construction from a checkpoint
    # ------------------------------------------------------------------
    @classmethod
    def from_checkpoint(
        cls,
        checkpoint,
        compiled,
        fault_set,
        governor=None,
        checkpoint_path=None,
        checkpoint_every=DEFAULT_CHECKPOINT_EVERY,
        progress_hook=None,
        rng=None,
        signal_guard=None,
        pressure=None,
        disk=None,
        tracer=None,
        metrics=None,
    ):
        """Rebuild a campaign from the last snapshot of *checkpoint*.

        Symbolic sessions are *not* serialized; they re-open from the
        snapshot's three-valued projection, so the resumed result is
        conservative and flagged ``exact=False``.  Raises
        :class:`~repro.runtime.errors.CheckpointMismatch` when the
        checkpoint's fingerprint names a different circuit or fault
        universe than the resume target.
        """
        keys = [r.fault.key() for r in fault_set]
        verify_fingerprint(
            checkpoint.path, checkpoint.fingerprint, compiled, keys
        )
        if keys != checkpoint.fault_keys:
            raise CheckpointError(
                checkpoint.path,
                "fault universe does not match the checkpointed campaign "
                f"({len(keys)} vs {len(checkpoint.fault_keys)} faults)",
            )
        ladder = DegradationLadder.from_json(checkpoint.ladder_json())
        campaign = cls(
            compiled,
            checkpoint.sequence,
            fault_set,
            ladder=ladder,
            node_limit=checkpoint.node_limit,
            governor=governor,
            checkpoint_path=checkpoint_path or checkpoint.path,
            checkpoint_every=checkpoint_every,
            fallback_frames=checkpoint.fallback_frames,
            variable_scheme=checkpoint.variable_scheme,
            progress_hook=progress_hook,
            rng=rng,
            signal_guard=signal_guard,
            circuit_spec=checkpoint.circuit_spec,
            xred=False,
            pre_pass_3v=False,
            pressure=pressure,
            disk=disk,
            tracer=tracer,
            metrics=metrics,
        )
        campaign.frame = checkpoint.frame
        campaign.resumed_from = checkpoint.frame
        campaign.good_3v = checkpoint.good_state
        counters = checkpoint.counters
        campaign.frames_symbolic = counters.get("frames_symbolic", 0)
        campaign.frames_three_valued = counters.get("frames_three_valued", 0)
        campaign.fallbacks = counters.get("fallbacks", 0)
        campaign.gc_runs = counters.get("gc_runs", 0)
        campaign.peak_nodes = counters.get("peak_nodes", 2)
        campaign.pressure_events = counters.get("pressure_events", 0)
        campaign.cache_evictions = counters.get("cache_evictions", 0)
        campaign.pressure_gc_runs = counters.get("pressure_gc_runs", 0)
        campaign.reorder_rescues = counters.get("reorder_rescues", 0)
        campaign.rss_surrenders = counters.get("rss_surrenders", 0)
        campaign.ladder_state.demotions = counters.get("demotions", 0)
        campaign.governor.nodes_allocated = counters.get("nodes_allocated", 0)
        campaign._resume_elapsed = checkpoint.elapsed
        if campaign._disk is not None:
            campaign._disk.compactions = counters.get("disk_compactions", 0)
            campaign._disk.stretches = counters.get("disk_stretches", 0)
            campaign._disk.soft_events = counters.get("disk_soft_events", 0)
            campaign._disk.hard_events = counters.get("disk_hard_events", 0)
            campaign._disk.reclaimed_bytes = counters.get(
                "disk_reclaimed_bytes", 0
            )

        if rng is not None and checkpoint.rng_state() is not None:
            rng.setstate(checkpoint.rng_state())

        for record, (state, rung_index, diff) in zip(
            fault_set, checkpoint.fault_states()
        ):
            record.state_from_json(state)
            if record.status == QUARANTINED:
                campaign.quarantined.append(record.fault.key())
            if rung_index is None:
                continue
            campaign.ladder_state.assign(record.fault.key(), rung_index)
            group = campaign.groups[rung_index]
            group.records[id(record)] = record
            group.diffs[id(record)] = diff or {}
        campaign._attached = True
        return campaign

    # ------------------------------------------------------------------
    # the main loop
    # ------------------------------------------------------------------
    def run(self):
        """Drive the campaign to completion (or a graceful stop)."""
        self.governor.start(
            elapsed_before=self._resume_elapsed,
            nodes_before=self.governor.nodes_allocated,
        )
        self._trace_base = {
            "detected": len(self.fault_set.detected()),
            "demotions": self.ladder_state.demotions,
            "quarantined": len(self.quarantined),
            "fallbacks": self.fallbacks,
            "gc_runs": self.gc_runs,
            "pressure_events": self.pressure_events,
        }
        self._root_span = self.tracer.span(
            "campaign",
            circuit=self.circuit_spec,
            frames=len(self.sequence),
            faults=len(self.fault_set),
            ladder=self.ladder.names(),
            resumed_from=self.resumed_from,
        )
        observer_token = self._install_failpoint_observer()
        try:
            if not self._attached:
                self._write_header()
                stopped_early = self._pre_passes()
                self._distribute_faults()
                if stopped_early:
                    return self._finish(stopped_early)
            return self._main_loop()
        finally:
            if self._writer is not None:
                self._writer.close()
            if observer_token is not None:
                _failpoints.set_observer(observer_token[0])

    def _install_failpoint_observer(self):
        """Route failpoint fires into this campaign's trace/metrics.

        Installed only while sites are armed: a disabled run keeps its
        byte-identical trace and metric set.  Returns a restore token
        (the previous observer, boxed) or None when nothing is armed.
        """
        if _failpoints.armed_count() == 0:
            return None
        if self.metrics is not None:
            self.metrics.gauge(
                "failpoints.active", _failpoints.armed_count()
            )

        def observe(site):
            if self.tracer.enabled:
                self.tracer.event("failpoint", site=site)
            if self.metrics is not None:
                self.metrics.inc("failpoints.fired")
                self.metrics.inc(f"failpoints.site.{site}")

        return (_failpoints.set_observer(observe),)

    def _pre_passes(self):
        """ID_X-red and the conventional three-valued pass.

        Returns a stop reason if a budget expired mid-pass, else None.
        """
        try:
            self.governor.check_frame(0)
            if self.xred:
                span = self.tracer.span("xred")
                before = len(self.fault_set.x_redundant())
                try:
                    eliminate_x_redundant(
                        self.compiled,
                        self.sequence,
                        self.fault_set,
                        initial_state=self.initial_state,
                    )
                finally:
                    # record the delta even on a budget stop: detections
                    # and eliminations made before the stop stand, and
                    # the profiler reconciles against them
                    span.add(
                        x_redundant=len(self.fault_set.x_redundant()) - before
                    )
                    span.close()
            if self.pre_pass_3v:
                span = self.tracer.span("prepass-3v")
                before = len(self.fault_set.detected())
                try:
                    fault_simulate_3v_parallel(
                        self.compiled,
                        self.sequence,
                        self.fault_set,
                        initial_state=self.initial_state,
                        frame_hook=self.governor.check_frame,
                    )
                finally:
                    span.add(
                        detected=len(self.fault_set.detected()) - before
                    )
                    span.close()
        except BudgetExceeded as exc:
            self._note_budget_stop(exc)
            return exc.kind
        return None

    def _distribute_faults(self):
        if any(rung.symbolic for rung in self.ladder.rungs):
            candidates = self.fault_set.symbolic_candidates()
        else:
            candidates = self.fault_set.undetected()
        start_group = self.groups[0]
        for record in candidates:
            self.ladder_state.assign(record.fault.key(), 0)
            start_group.records[id(record)] = record
            start_group.diffs[id(record)] = {}
        self._attached = True

    def _main_loop(self):
        sequence = self.sequence
        while self.frame < len(sequence):
            if not any(group.live_count() for group in self.groups):
                break
            if (
                self.signal_guard is not None
                and self.signal_guard.stop_requested
            ):
                return self._finish("signal")
            try:
                self.governor.check_frame(self.frame)
                self._check_disk()
            except BudgetExceeded as exc:
                self._note_budget_stop(exc)
                return self._finish(exc.kind)
            stop = self._run_frame(sequence[self.frame])
            self.frame += 1
            if stop is not None:
                return self._finish(stop)
            if (
                self.frame % self.checkpoint_every == 0
                and self.frame < len(sequence)
            ):
                self._write_checkpoint()
                self._emit_progress()
        return self._finish(COMPLETED)

    def _run_frame(self, vector):
        """One lockstep frame; returns a stop reason (budget kind) or None.

        A campaign-level budget can expire while some groups have
        already stepped; the frame is then *completed* three-valued for
        the remaining groups so every fault sits on the same frame
        boundary when the final checkpoint is written.
        """
        time = self.frame + 1  # detection times are 1-based
        good_values = simulate_frame(
            self.compiled, THREE_VALUED, vector, self.good_3v
        )
        stop = None
        stepped_symbolic = False
        stepped_3v = False
        pending = list(self.groups)
        while pending:
            group = pending.pop(0)
            if stop is not None:
                # budget expired mid-frame: drain remaining groups 3v
                if group.rung.symbolic and group.session is not None:
                    self._begin_interlude(group)
                if group.records:
                    self._three_valued_step(
                        good_values, group, time,
                        quarantine_on_budget=not group.rung.symbolic,
                    )
                    stepped_3v = True
                if group.interlude_left > 0:
                    group.interlude_left -= 1
                continue
            if not group.rung.symbolic:
                if group.records:
                    self._three_valued_step(
                        good_values, group, time, quarantine_on_budget=True
                    )
                    stepped_3v = True
                continue
            if group.interlude_left > 0:
                if group.records:
                    self._three_valued_step(good_values, group, time)
                    stepped_3v = True
                group.interlude_left -= 1
                continue
            if group.session is None and group.records:
                try:
                    self._open_session(group)
                except (SpaceLimitExceeded, MemoryError) as exc:
                    # the rung's limit cannot even hold the state
                    # encoding (or the allocation itself failed — a
                    # real OOM or the bdd.alloc failpoint): run this
                    # group three-valued for a while
                    self._note_surrender(exc)
                    self.fallbacks += 1
                    self.tracer.event(
                        "fallback",
                        frame=self.frame,
                        rung=group.rung.strategy,
                        reason="open-session",
                    )
                    group.session = None
                    group.interlude_left = self.fallback_frames
                    self._three_valued_step(good_values, group, time)
                    group.interlude_left -= 1
                    stepped_3v = True
                    continue
                except BudgetExceeded as exc:
                    self._note_budget_stop(exc)
                    stop = exc.kind
                    group.session = None
                    pending.insert(0, group)
                    continue
            if group.session is not None and group.session.live_records():
                span = self.tracer.span(
                    "step",
                    frame=self.frame,
                    rung=group.rung.strategy,
                    mode="symbolic",
                    live=len(group.session.live_records()),
                )
                try:
                    outcome = self._step_symbolic_group(group, vector)
                except BudgetExceeded as exc:
                    span.add(outcome="budget")
                    span.close()
                    self._note_budget_stop(exc)
                    stop = exc.kind
                    pending.insert(0, group)
                    continue
                span.add(
                    outcome=(
                        outcome if isinstance(outcome, str)
                        else ("stepped" if outcome else "empty")
                    )
                )
                span.close()
                if outcome == "interlude":
                    self._three_valued_step(good_values, group, time)
                    group.interlude_left -= 1
                    stepped_3v = True
                elif outcome:
                    stepped_symbolic = True
        self.good_3v = next_state_of(self.compiled, good_values)
        if stepped_symbolic:
            self.frames_symbolic += 1
        if stepped_3v:
            self.frames_three_valued += 1
        return stop

    # ------------------------------------------------------------------
    # symbolic groups
    # ------------------------------------------------------------------
    def _open_session(self, group):
        """Fresh session for *group* from the current three-valued state."""
        session = SymbolicSession(
            self.compiled,
            group.rung.strategy,
            good_state_3v=self.good_3v,
            node_limit=group.rung.node_limit(self.node_limit),
            variable_scheme=self.variable_scheme,
            start_time=self.frame,
        )
        self.governor.attach_manager(session.manager)
        if self._observe:
            session.manager.enable_stats()
            session.tracer = self.tracer
            session.metrics = self.metrics
        governor_hook = (
            self.governor.check_fault_frame_nodes
            if self.governor.fault_frame_nodes is not None
            else None
        )
        if self._observe and governor_hook is not None:

            def cost_hook(record, nodes, _inner=governor_hook):
                # count the effort first: a budget check that raises
                # still spent the nodes it is complaining about
                self._note_fault_cost(record, nodes)
                _inner(record, nodes)

            session.fault_cost_hook = cost_hook
        elif self._observe:
            session.fault_cost_hook = self._note_fault_cost
        elif governor_hook is not None:
            session.fault_cost_hook = governor_hook
        if self.pressure is not None:
            # governor hook first, monitor chained after it — relief
            # fires only once budget metering has seen the allocation
            session.attach_pressure(
                self.pressure.monitor(on_event=self._on_pressure_event)
            )
        for key, record in group.records.items():
            session.attach_fault(record, group.diffs.get(key))
        group.records = {}
        group.diffs = {}
        group.session = session

    def _step_symbolic_group(self, group, vector):
        """One frame for a symbolic group, with the retry protocol.

        Returns True on a successful step, ``"interlude"`` after a
        whole-group fallback (the caller then simulates this frame
        three-valued), False when the group emptied out.  Per-fault
        blow-ups demote just the offending fault and retry; the step is
        atomic, so a retry re-runs the frame from unchanged state.
        """
        gc_tried = False
        while True:
            session = group.session
            if not session.live_records():
                return False
            try:
                detected = session.step(vector)
            except (SpaceLimitExceeded, MemoryError) as exc:
                # MemoryError is an allocation failing outright (a real
                # OOM, or the bdd.alloc failpoint standing in for one);
                # the step left the session untouched either way, so it
                # gets the same surrender protocol as a space overflow
                # — conservative, never a wrong verdict
                self.peak_nodes = max(
                    self.peak_nodes, session.manager.peak_nodes
                )
                self._note_surrender(exc)
                if isinstance(exc, MemoryPressureExceeded):
                    reason = "pressure"
                elif isinstance(exc, MemoryError):
                    reason = "alloc"
                else:
                    reason = "space"
                if not gc_tried:
                    freed = session.compact()
                    self.gc_runs += 1
                    self.tracer.event(
                        "gc", frame=self.frame, freed=freed,
                        rung=group.rung.strategy,
                    )
                    gc_tried = True
                    limit = session.manager.node_limit or 0
                    if session.manager.num_nodes < _GC_RETRY_FRACTION * limit:
                        continue
                fault_key = getattr(exc, "fault_key", None)
                if fault_key is not None:
                    self._demote(group, fault_key, reason=reason)
                    continue
                self._begin_interlude(group)
                return "interlude"
            except BudgetExceeded as exc:
                if exc.fault_key is not None:
                    self._demote(group, exc.fault_key, reason="budget")
                    continue
                raise
            self.peak_nodes = max(self.peak_nodes, session.manager.peak_nodes)
            for record in detected:
                self.ladder_state.forget(record.fault.key())
            return True

    def _demote(self, group, fault_key, reason=None):
        """Move one fault a rung down (or quarantine it off the end)."""
        record = self._record_of[fault_key]
        if group.session is not None and id(record) in group.session._store:
            diff = group.session.detach(record, relative_to=self.good_3v)
        else:
            group.records.pop(id(record), None)
            diff = group.diffs.pop(id(record), {})
        try:
            new_index = self.ladder_state.demote(
                fault_key, frame=self.frame, reason=reason
            )
        except DegradationExhausted:
            self._quarantine(record)
            return
        if self.tracer.enabled:
            self.tracer.event(
                "demote",
                fault=str(fault_key),
                frame=self.frame,
                reason=reason,
                to=self.groups[new_index].rung.strategy,
                **{"from": group.rung.strategy},
            )
        target = self.groups[new_index]
        if target.rung.symbolic and target.session is not None:
            try:
                target.session.attach_fault(record, diff)
                return
            except (SpaceLimitExceeded, MemoryError):
                # the target session is itself out of headroom; push the
                # whole target group into a three-valued interlude and
                # park the record with it
                target.session._store.pop(id(record), None)
                self._begin_interlude(target)
        target.records[id(record)] = record
        target.diffs[id(record)] = diff or {}

    def _quarantine(self, record):
        record.mark_quarantined()
        key = record.fault.key()
        self.ladder_state.forget(key)
        self.quarantined.append(key)
        self.tracer.event("quarantine", fault=str(key), frame=self.frame)

    def _begin_interlude(self, group):
        """Whole-group fallback: project to three-valued, drop the
        session, simulate ``fallback_frames`` frames conventionally."""
        self.fallbacks += 1
        self.tracer.event(
            "fallback",
            frame=self.frame,
            rung=group.rung.strategy,
            reason="interlude",
        )
        session = group.session
        self._fold_session_stats(session)
        records = {}
        diffs = {}
        for record in session.live_records():
            records[id(record)] = record
            diffs[id(record)] = session.detach(record, relative_to=self.good_3v)
        group.session = None
        group.records = records
        group.diffs = diffs
        group.interlude_left = self.fallback_frames

    # ------------------------------------------------------------------
    # disk-pressure relief ladder
    # ------------------------------------------------------------------
    #: ceiling of checkpoint-interval stretching, as a multiple of the
    #: configured interval; past it the ladder has no rungs left
    _DISK_STRETCH_MAX = 8

    def _check_disk(self):
        """One frame-boundary watermark check plus the relief ladder.

        ``soft`` compacts the checkpoint (dropping superseded snapshot
        records) and, when that is not enough, stretches the
        checkpoint interval — both semantics-preserving.  ``hard``
        runs the same rungs and, once they are exhausted, raises
        :class:`~repro.runtime.errors.DiskPressureExceeded`, which the
        main loop routes like every budget stop: final checkpoint,
        partial result, ``stopped="disk"``.
        """
        governor = self._disk
        if governor is None:
            return
        level = governor.check()
        if level == LEVEL_OK:
            return
        if self._compact_own_checkpoint(force=level == LEVEL_HARD):
            level = governor.check(force=True)
            if level == LEVEL_OK:
                return
        stretched = self._disk_stretch()
        if level == LEVEL_HARD and not stretched:
            governor.hard_stop(frame=self.frame)

    def _compact_own_checkpoint(self, force=False):
        """Online compaction at a safe point (no record mid-write).

        Closes the writer, rewrites the file keeping only the records
        a resume reads, and reopens for append.  A failed compaction
        (including the ``disk.compact.crash`` failpoint) leaves the
        original file untouched and reports no relief.
        """
        writer = self._writer
        if writer is None:
            return False
        if writer.records_written == 0 and not force:
            return False  # nothing new since the last compaction
        checkpoints_written = writer.checkpoints_written
        path = writer.path
        writer.close()
        self._writer = None
        stats = None
        try:
            stats = compact_checkpoint(path)
        except CheckpointError:
            pass
        finally:
            self._writer = CheckpointWriter(path)
            self._writer.checkpoints_written = checkpoints_written
        if stats is None:
            self.tracer.event(
                "disk", action="compact-failed", frame=self.frame
            )
            return False
        self._disk.note_compaction(
            stats["bytes_before"], stats["bytes_after"]
        )
        if self.metrics is not None:
            self.metrics.inc("disk.compactions")
        self.tracer.event(
            "disk",
            action="compact",
            frame=self.frame,
            records_before=stats["records_before"],
            records_after=stats["records_after"],
        )
        return True

    def _disk_stretch(self):
        """Double the checkpoint interval (bounded); True when it moved.

        Fewer snapshot records per frame means slower checkpoint-file
        growth at the price of more re-run work after a crash — a
        durability trade, never a verdict trade.
        """
        limit = self._base_checkpoint_every * self._DISK_STRETCH_MAX
        if self.checkpoint_every >= limit:
            return False
        self.checkpoint_every = min(self.checkpoint_every * 2, limit)
        self._disk.note_stretch()
        if self.metrics is not None:
            self.metrics.inc("disk.stretches")
        self.tracer.event(
            "disk",
            action="stretch",
            frame=self.frame,
            checkpoint_every=self.checkpoint_every,
        )
        return True

    def _disk_accounting(self):
        """The ``disk`` dict of the result; None when no budget armed."""
        if self._disk is None:
            return None
        data = self._disk.accounting()
        data["config"] = self._disk.config.to_json()
        data["checkpoint_every"] = self.checkpoint_every
        return data

    # ------------------------------------------------------------------
    # memory-pressure bookkeeping
    # ------------------------------------------------------------------
    _PRESSURE_LOG_CAP = 128

    def _on_pressure_event(self, event):
        """Aggregate one monitor event into the campaign counters."""
        self.pressure_events += 1
        action = event.get("action")
        if action == "evict":
            self.cache_evictions += 1
        elif action == "gc":
            self.pressure_gc_runs += 1
            self.gc_runs += 1  # a watermark GC is still a GC run
        elif action == "rescue":
            self.reorder_rescues += 1
        elif action == "surrender":
            self.rss_surrenders += 1
        rss = event.get("rss")
        if rss is not None and rss > self._event_peak_rss:
            self._event_peak_rss = rss
        if len(self.pressure_log) < self._PRESSURE_LOG_CAP:
            entry = dict(event)
            entry["frame"] = self.frame
            self.pressure_log.append(entry)
        if self.tracer.enabled:
            payload = {k: v for k, v in event.items() if k != "frame"}
            self.tracer.event("pressure", frame=self.frame, **payload)

    def _note_surrender(self, exc):
        """Record a pressure surrender (only MemoryPressureExceeded)."""
        if not isinstance(exc, MemoryPressureExceeded):
            return
        self._on_pressure_event(
            {
                "action": "surrender",
                "trigger": "rss",
                "rss": exc.requested,
                "fault": (
                    None if exc.fault_key is None else str(exc.fault_key)
                ),
            }
        )

    def _pressure_accounting(self):
        """The ``pressure`` dict of the result; None when inert."""
        if self.pressure is None and self.pressure_events == 0:
            return None
        return {
            "events": self.pressure_events,
            "cache_evictions": self.cache_evictions,
            "gc_runs": self.pressure_gc_runs,
            "reorder_rescues": self.reorder_rescues,
            "rss_surrenders": self.rss_surrenders,
            "peak_rss": max(self.governor.peak_rss, self._event_peak_rss),
            "log": list(self.pressure_log),
        }

    # ------------------------------------------------------------------
    # observability: per-fault effort, BDD stats, metric samples
    # ------------------------------------------------------------------
    def _note_fault_cost(self, record, nodes):
        """Session hook: one symbolic frame stepped for *record*."""
        effort = self._fault_effort.setdefault(record.fault.key(), [0, 0, 0])
        effort[0] += 1
        effort[2] += nodes

    def _note_budget_stop(self, exc):
        """Trace a campaign-level budget expiry (the stop reason)."""
        self.tracer.event(
            "budget",
            budget_kind=exc.kind,
            frame=self.frame,
            observed=exc.observed,
            limit=exc.limit,
        )

    def _fold_session_stats(self, session):
        """Bank a dying session's BDD counters before it is dropped."""
        if not self._observe:
            return
        stats = session.manager.stats()
        self._bdd_peak = max(self._bdd_peak, stats["peak_nodes"])
        for key in _BDD_COUNTER_KEYS:
            self._bdd_base[key] = self._bdd_base.get(key, 0) + stats[key]

    def _bdd_stats(self):
        """Aggregate BDD stats: banked sessions plus live ones."""
        totals = {
            key: self._bdd_base.get(key, 0) for key in _BDD_COUNTER_KEYS
        }
        totals["num_nodes"] = 0
        totals["cache_size"] = 0
        peak = self._bdd_peak
        for group in self.groups:
            if group.session is None:
                continue
            stats = group.session.manager.stats()
            for key in _BDD_COUNTER_KEYS:
                totals[key] += stats[key]
            totals["num_nodes"] += stats["num_nodes"]
            totals["cache_size"] += stats["cache_size"]
            peak = max(peak, stats["peak_nodes"])
        totals["peak_nodes"] = peak
        return totals

    def _sample_metrics(self, name="sample"):
        """Push current totals into the registry and the trace.

        Everything sampled here is a deterministic function of the
        simulation (never RSS or wall clock), so canonical traces stay
        byte-reproducible.
        """
        if not self._observe:
            return
        stats = self._bdd_stats()
        detected = len(self.fault_set.detected())
        live = sum(group.live_count() for group in self.groups)
        if self.metrics is not None:
            for key in _BDD_COUNTER_KEYS:
                self.metrics.set_total("bdd." + key, stats[key])
            self.metrics.gauge("bdd.num_nodes", stats["num_nodes"])
            self.metrics.gauge("bdd.cache_size", stats["cache_size"])
            self.metrics.gauge_max("bdd.peak_nodes", stats["peak_nodes"])
            self.metrics.gauge("campaign.frame", self.frame)
            self.metrics.gauge("campaign.live", live)
            self.metrics.set_total("campaign.detected", detected)
            self.metrics.set_total(
                "campaign.frames_symbolic", self.frames_symbolic
            )
            self.metrics.set_total(
                "campaign.frames_three_valued", self.frames_three_valued
            )
            self.metrics.set_total("campaign.fallbacks", self.fallbacks)
            self.metrics.set_total("campaign.gc_runs", self.gc_runs)
            self.metrics.set_total(
                "campaign.demotions", self.ladder_state.demotions
            )
            self.metrics.set_total(
                "campaign.quarantined", len(self.quarantined)
            )
            self.metrics.set_total(
                "campaign.pressure_events", self.pressure_events
            )
            self.metrics.set_total(
                "governor.nodes_allocated", self.governor.nodes_allocated
            )
        if self.tracer.enabled:
            self.tracer.metrics(
                name,
                {
                    "campaign.frame": self.frame,
                    "campaign.live": live,
                    "campaign.detected": detected,
                    "bdd.cache_hits": stats["cache_hits"],
                    "bdd.cache_misses": stats["cache_misses"],
                    "bdd.nodes_created": stats["nodes_created"],
                    "bdd.num_nodes": stats["num_nodes"],
                    "governor.nodes_allocated": (
                        self.governor.nodes_allocated
                    ),
                },
            )

    def _close_trace(self, stopped):
        """Fault spans, the root span and the summary record."""
        if self.tracer.enabled:
            # one span per fault in the universe — faults classified
            # before symbolic stepping (x-red, 3v pre-pass) show zero
            # effort, so the profiler sees the whole population
            for key in sorted(self._record_of, key=str):
                effort = self._fault_effort.get(key, (0, 0, 0))
                record = self._record_of[key]
                self.tracer.span(
                    "fault",
                    fault=str(key),
                    frames_symbolic=effort[0],
                    frames_3v=effort[1],
                    nodes=effort[2],
                    state=record.status,
                ).close()
        if self._root_span is not None:
            self._root_span.add(stopped=stopped)
            self._root_span.close()
            self._root_span = None
        if not self.tracer.enabled:
            return
        base = self._trace_base
        reasons = {}
        for entry in self.ladder_state.demotion_log:
            reason = entry[4] if len(entry) > 4 and entry[4] else None
            reason = reason or "unattributed"
            reasons[reason] = reasons.get(reason, 0) + 1
        summary = {
            "stopped": stopped,
            "frames_total": self.frame,
            "frames_symbolic": self.frames_symbolic,
            "frames_three_valued": self.frames_three_valued,
            "fallbacks": self.fallbacks - base.get("fallbacks", 0),
            "gc_runs": self.gc_runs - base.get("gc_runs", 0),
            "demotions": (
                self.ladder_state.demotions - base.get("demotions", 0)
            ),
            "demotion_reasons": dict(sorted(reasons.items())),
            "quarantined": (
                len(self.quarantined) - base.get("quarantined", 0)
            ),
            "checkpoints_written": (
                self._writer.checkpoints_written if self._writer else 0
            ),
            "peak_nodes": self.peak_nodes,
            "detected": (
                len(self.fault_set.detected()) - base.get("detected", 0)
            ),
            "total_faults": len(self.fault_set),
            "nodes_allocated": self.governor.nodes_allocated,
            "pressure_events": (
                self.pressure_events - base.get("pressure_events", 0)
            ),
        }
        if self.resumed_from is not None:
            summary["resumed_from"] = self.resumed_from
        if _failpoints.armed_count():
            # only under injection: a clean run's summary is unchanged
            summary["failpoints_fired"] = sum(
                _failpoints.fired_counts().values()
            )
        if self.tracer.wall:
            summary["elapsed"] = round(self.governor.elapsed(), 3)
        self.tracer.summary(summary)

    # ------------------------------------------------------------------
    # three-valued stepping (interludes and the bottom rung)
    # ------------------------------------------------------------------
    def _three_valued_step(
        self, good_values, group, time, quarantine_on_budget=False
    ):
        records, diffs = group.records, group.diffs
        span = self.tracer.span(
            "step",
            frame=time - 1,
            rung=group.rung.strategy,
            mode="3v",
            live=len(records),
        )
        observing = self._observe
        for key in list(records):
            record = records[key]
            if observing:
                effort = self._fault_effort.setdefault(
                    record.fault.key(), [0, 0, 0]
                )
                effort[1] += 1
            result = propagate_fault(
                self.compiled,
                THREE_VALUED,
                good_values,
                record.fault,
                diffs[key],
            )
            if quarantine_on_budget:
                try:
                    self.governor.check_fault_frame_events(
                        record, len(result.diff)
                    )
                except BudgetExceeded:
                    del records[key], diffs[key]
                    self._quarantine(record)
                    continue
            if _check_sot_detection(
                self.compiled, good_values, result, THREE_VALUED
            ):
                record.mark_detected(BY_3V, time)
                self.ladder_state.forget(record.fault.key())
                del records[key], diffs[key]
                if self.tracer.enabled:
                    self.tracer.event(
                        "detect",
                        fault=str(record.fault.key()),
                        rung=group.rung.strategy,
                        frame=time - 1,
                        by=BY_3V,
                        acc_nodes=0,
                    )
            else:
                diffs[key] = result.next_state_diff
        span.add(outcome="stepped")
        span.close()

    # ------------------------------------------------------------------
    # checkpoints, progress, finishing
    # ------------------------------------------------------------------
    def _write_header(self):
        if self._writer is None:
            return
        fault_keys = [r.fault.key() for r in self.fault_set]
        self._writer.write_header(
            circuit_spec=self.circuit_spec,
            sequence=self.sequence,
            fault_keys=fault_keys,
            ladder=self.ladder,
            node_limit=self.node_limit,
            initial_state=self.initial_state,
            variable_scheme=self.variable_scheme,
            fallback_frames=self.fallback_frames,
            fingerprint=circuit_fingerprint(self.compiled, fault_keys),
        )

    def _live_snapshot(self):
        """(rung_indices, diffs) keyed by id(record) for all live faults."""
        rungs = {}
        diffs = {}
        for group in self.groups:
            if group.session is not None:
                session_diffs = group.session.snapshot_diffs(
                    relative_to=self.good_3v
                )
                for record in group.session.live_records():
                    rungs[id(record)] = group.rung_index
                    diffs[id(record)] = session_diffs[id(record)]
            for key, record in group.records.items():
                rungs[id(record)] = group.rung_index
                diffs[id(record)] = group.diffs.get(key, {})
        return rungs, diffs

    def _counters(self):
        counters = {
            "frames_symbolic": self.frames_symbolic,
            "frames_three_valued": self.frames_three_valued,
            "fallbacks": self.fallbacks,
            "gc_runs": self.gc_runs,
            "demotions": self.ladder_state.demotions,
            "peak_nodes": self.peak_nodes,
            "nodes_allocated": self.governor.nodes_allocated,
            "pressure_events": self.pressure_events,
            "cache_evictions": self.cache_evictions,
            "pressure_gc_runs": self.pressure_gc_runs,
            "reorder_rescues": self.reorder_rescues,
            "rss_surrenders": self.rss_surrenders,
        }
        if self._disk is not None:
            # only the deterministic relief counters: usage/free bytes
            # vary run to run and would break byte-stable comparisons
            counters["disk_compactions"] = self._disk.compactions
            counters["disk_stretches"] = self._disk.stretches
            counters["disk_soft_events"] = self._disk.soft_events
            counters["disk_hard_events"] = self._disk.hard_events
            counters["disk_reclaimed_bytes"] = self._disk.reclaimed_bytes
        return counters

    def _write_checkpoint(self):
        if self._writer is None:
            return
        rungs, diffs = self._live_snapshot()
        self._writer.write_checkpoint(
            frame=self.frame,
            good_state_3v=self.good_3v,
            fault_set=self.fault_set,
            rung_indices=rungs,
            diffs_3v=diffs,
            counters=self._counters(),
            rng_state=self.rng.getstate() if self.rng else None,
            elapsed=round(self.governor.elapsed(), 6),
        )
        self.tracer.event(
            "checkpoint",
            frame=self.frame,
            written=self._writer.checkpoints_written,
        )

    def _progress_payload(self):
        counts = self.fault_set.counts()
        return {
            "frame": self.frame,
            "frames_total": len(self.sequence),
            "detected": counts["detected"],
            "live": sum(group.live_count() for group in self.groups),
            "quarantined": len(self.quarantined),
            "rung_population": self.ladder_state.population(),
            "fallbacks": self.fallbacks,
            "demotions": self.ladder_state.demotions,
            "peak_nodes": self.peak_nodes,
            "elapsed": round(self.governor.elapsed(), 3),
            # for live consumers (`repro top`, /jobs/<id>/events):
            # a monotonic stamp to order payloads across sources and
            # the cumulative BDD-node effort so throughput and ETA can
            # be derived without guessing at wall-clock skew
            "monotonic": round(time.monotonic(), 3),
            "nodes_allocated": getattr(
                self.governor, "nodes_allocated", 0
            ),
        }

    def _emit_progress(self, final=False):
        self._sample_metrics("final" if final else "sample")
        payload = self._progress_payload()
        if self._writer is not None:
            self._writer.write_progress(payload)
        if self.progress_hook is not None:
            if self.metrics is not None:
                payload = dict(payload, metrics=self.metrics.flat())
            self.progress_hook(payload)

    def _finish(self, stopped):
        self.stopped = stopped
        for group in self.groups:
            if group.session is not None:
                self.peak_nodes = max(
                    self.peak_nodes, group.session.manager.peak_nodes
                )
        self._write_checkpoint()
        self._emit_progress(final=True)
        self._close_trace(stopped)
        return CampaignResult(
            self.fault_set,
            self.ladder.rungs[0].strategy,
            frames_total=self.frame,
            frames_symbolic=self.frames_symbolic,
            frames_three_valued=self.frames_three_valued,
            fallbacks=self.fallbacks,
            gc_runs=self.gc_runs,
            peak_nodes=self.peak_nodes,
            demotions=self.ladder_state.demotions,
            demotion_log=list(self.ladder_state.demotion_log),
            quarantined=list(self.quarantined),
            checkpoints_written=(
                self._writer.checkpoints_written if self._writer else 0
            ),
            checkpoint_path=self._writer.path if self._writer else None,
            resumed_from=self.resumed_from,
            stopped=stopped,
            budget=self.governor.accounting(),
            ladder_names=self.ladder.names(),
            rung_population=self.ladder_state.population(),
            pressure=self._pressure_accounting(),
            disk=self._disk_accounting(),
        )


# ----------------------------------------------------------------------
# public entry points
# ----------------------------------------------------------------------
_FABRIC_KWARGS = (
    "workers",
    "shard_size",
    "shard_timeout",
    "heartbeat_timeout",
    "max_retries",
    "worker_rss_cap",
    "fabric_config",
)


def run_campaign(compiled, sequence, fault_set, **kwargs):
    """Run a resilient fault-simulation campaign; see :class:`Campaign`.

    Accepts every :class:`Campaign` keyword (strategy, ladder,
    node_limit, governor, checkpoint_path, checkpoint_every,
    fallback_frames, initial_state, variable_scheme, progress_hook,
    rng, signal_guard, circuit_spec, xred, pre_pass_3v, pressure,
    tracer, metrics) and returns a :class:`CampaignResult`.

    Passing ``workers`` (or any other shard-fabric keyword:
    ``shard_size``, ``shard_timeout``, ``heartbeat_timeout``,
    ``max_retries``, ``worker_rss_cap``, ``fabric_config``) routes the
    run through the
    multiprocess :class:`~repro.runtime.fabric.ShardFabric` instead of
    a single in-process campaign; the returned result then also carries
    ``fabric`` accounting.

    ``audit="sample"`` / ``"full"`` (or an
    :class:`~repro.audit.AuditOptions`) runs the witness-replay audit
    (:func:`repro.audit.run_audit`) over the finished campaign's
    verdicts: the report lands on ``result.audit`` (and in
    ``runtime_summary()``), refuted faults are quarantined, and — when
    the campaign itself was sharded — the audit reuses the same worker
    pool sizing.  ``audit_seed`` / ``audit_node_limit`` /
    ``audit_checkpoint_path`` parameterize it.
    """
    audit = kwargs.pop("audit", None)
    audit_seed = kwargs.pop("audit_seed", 0)
    audit_node_limit = kwargs.pop("audit_node_limit", None)
    audit_checkpoint_path = kwargs.pop("audit_checkpoint_path", None)
    if audit in (None, False, "off"):
        audit = None
    if audit is not None:
        initial = kwargs.get("initial_state")
        if initial is not None and any(v != threeval.X for v in initial):
            raise ValueError(
                "audit requires an all-X initial state: witness "
                "extraction certifies pairs of initial states, which is "
                "meaningless for a campaign pinned to a concrete one"
            )
    # the audit reuses the campaign's pool sizing and observability
    audit_workers = kwargs.get("workers")
    audit_fabric_config = kwargs.get("fabric_config")
    audit_tracer = kwargs.get("tracer")
    audit_metrics = kwargs.get("metrics")

    if any(key in kwargs for key in _FABRIC_KWARGS):
        from repro.runtime.fabric import run_sharded_campaign

        # disk governance is a single-process campaign (and service)
        # concern: the fabric checkpoints per shard, compacted offline
        # via `repro compact` (the service does it on recovery)
        if kwargs.pop("disk", None) is not None:
            warnings.warn(
                "disk budget ignored for sharded runs: compact the "
                "fabric checkpoint offline with `repro compact`",
                RuntimeWarning,
                stacklevel=2,
            )
        config = kwargs.pop("fabric_config", None)
        if config is not None:
            kwargs["config"] = config
        result = run_sharded_campaign(
            compiled, sequence, fault_set, **kwargs
        )
    else:
        result = Campaign(compiled, sequence, fault_set, **kwargs).run()

    if audit is not None:
        from repro.audit import AuditOptions, run_audit

        if isinstance(audit, AuditOptions):
            options = audit
        else:
            options = AuditOptions(
                mode=audit,
                seed=audit_seed,
                node_limit=audit_node_limit,
                checkpoint_path=audit_checkpoint_path,
            )
        report = run_audit(
            compiled,
            sequence,
            result.fault_set,
            options=options,
            strategy=result.ladder[0] if result.ladder else "MOT",
            complete=result.stopped == COMPLETED,
            exact=result.exact,
            workers=audit_workers,
            fabric_config=audit_fabric_config,
            tracer=audit_tracer,
            metrics=audit_metrics,
            quarantine=True,
        )
        result.audit = report
        result.quarantined.extend(report.refuted_keys())
    return result


def _load_compiled(circuit_spec):
    import os

    from repro.circuit.compile import compile_circuit

    if os.path.exists(circuit_spec):
        from repro.circuit.bench import load_bench

        return compile_circuit(load_bench(circuit_spec))
    from repro.circuits.registry import get_circuit

    return compile_circuit(get_circuit(circuit_spec))


def resume_campaign(
    checkpoint_path,
    compiled=None,
    fault_set=None,
    governor=None,
    checkpoint_every=DEFAULT_CHECKPOINT_EVERY,
    progress_hook=None,
    rng=None,
    signal_guard=None,
    pressure=None,
    disk=None,
    tracer=None,
    metrics=None,
    on_corrupt=None,
):
    """Resume a campaign from the last snapshot in *checkpoint_path*.

    When *compiled* / *fault_set* are omitted they are rebuilt from the
    checkpoint header (registry name or ``.bench`` path, collapsed
    fault universe) and validated against the recorded fault keys.
    Returns a :class:`CampaignResult` with ``resumed_from`` set and
    ``exact=False``.

    A record failing its CRC (or otherwise unparseable mid-file) is
    *quarantined*, not fatal: snapshots are cumulative, so resuming
    from the latest intact one only re-runs frames — verdicts are
    unaffected.  The default *on_corrupt* emits a ``RuntimeWarning``
    per quarantined record; pass a callable to collect the reports
    instead.  Resume still refuses (typed
    :class:`~repro.runtime.errors.CheckpointError`) when the loss is
    verdict-affecting: a corrupt header, or no intact snapshot left.
    """
    if on_corrupt is None:
        def on_corrupt(report, _path=str(checkpoint_path)):
            warnings.warn(
                f"checkpoint {_path}: quarantined corrupt record at line "
                f"{report['line']} ({report['reason']}); resuming from "
                "the latest intact snapshot",
                RuntimeWarning,
                stacklevel=2,
            )
    checkpoint = load_checkpoint(checkpoint_path, on_corrupt=on_corrupt)
    if compiled is None:
        compiled = _load_compiled(checkpoint.circuit_spec)
    if fault_set is None:
        from repro.faults.collapse import collapse_faults

        faults, _ = collapse_faults(compiled)
        fault_set = FaultSet(faults)
    campaign = Campaign.from_checkpoint(
        checkpoint,
        compiled,
        fault_set,
        governor=governor,
        checkpoint_path=checkpoint_path,
        checkpoint_every=checkpoint_every,
        progress_hook=progress_hook,
        rng=rng,
        signal_guard=signal_guard,
        pressure=pressure,
        disk=disk,
        tracer=tracer,
        metrics=metrics,
    )
    return campaign.run()
